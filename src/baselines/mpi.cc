#include "baselines/mpi.h"

#include <barrier>
#include <thread>

#include "common/clock.h"
#include "common/sync.h"
#include "common/logging.h"
#include "raylib/env.h"
#include "common/random.h"

namespace ray {
namespace baselines {

AllreduceResult MpiRingAllreduce(SimNetwork& net, const std::vector<NodeId>& ranks,
                                 size_t elements, int iterations,
                                 const std::vector<std::vector<float>>* inputs) {
  int n = static_cast<int>(ranks.size());
  RAY_CHECK(n >= 2);
  std::vector<std::vector<float>> buffers(n);
  for (int i = 0; i < n; ++i) {
    if (inputs != nullptr) {
      buffers[i] = (*inputs)[i];
    } else {
      buffers[i].assign(elements, static_cast<float>(i + 1));
    }
  }
  size_t per = elements / n;
  auto range = [&](int c) {
    size_t begin = per * c;
    size_t end = (c == n - 1) ? elements : begin + per;
    return std::pair<size_t, size_t>(begin, end);
  };

  // Staging area: chunk contents handed rank-to-rank each step.
  std::vector<std::vector<float>> inbox(n);
  std::barrier<> sync(n);
  Timer timer;
  auto rank_fn = [&](int i) {
    for (int it = 0; it < iterations; ++it) {
      // Reduce-scatter. One progress thread: the send (1 stream) completes
      // before the receive is processed, like single-threaded MPI progress.
      for (int s = 0; s < n - 1; ++s) {
        int c = ((i - s) % n + n) % n;
        auto [b, e] = range(c);
        std::vector<float> out(buffers[i].begin() + b, buffers[i].begin() + e);
        Status st = net.Transfer(ranks[i], ranks[(i + 1) % n], (e - b) * sizeof(float), 1);
        RAY_CHECK(st.ok());
        inbox[(i + 1) % n] = std::move(out);
        sync.arrive_and_wait();  // send phase done cluster-wide
        int rc = (((i - 1) - s) % n + n) % n;  // chunk arriving from rank i-1
        auto [rb, re] = range(rc);
        for (size_t k = rb; k < re; ++k) {
          buffers[i][k] += inbox[i][k - rb];
        }
        sync.arrive_and_wait();  // apply phase done
      }
      // Allgather.
      for (int s = 0; s < n - 1; ++s) {
        int c = ((i + 1 - s) % n + n) % n;
        auto [b, e] = range(c);
        std::vector<float> out(buffers[i].begin() + b, buffers[i].begin() + e);
        Status st = net.Transfer(ranks[i], ranks[(i + 1) % n], (e - b) * sizeof(float), 1);
        RAY_CHECK(st.ok());
        inbox[(i + 1) % n] = std::move(out);
        sync.arrive_and_wait();
        int rc = ((i - s) % n + n) % n;
        auto [rb, re] = range(rc);
        std::copy(inbox[i].begin(), inbox[i].end(), buffers[i].begin() + rb);
        sync.arrive_and_wait();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back(rank_fn, i);
  }
  for (auto& t : threads) {
    t.join();
  }
  AllreduceResult result;
  result.seconds_per_iteration = timer.ElapsedSeconds() / iterations;
  result.reduced = std::move(buffers[0]);
  return result;
}

SimulationResult BspSimulation(int num_cores, const std::string& env_name, int rounds,
                               int max_steps, uint64_t seed_base) {
  // Dummy policy: zeros (the comparison measures simulation throughput, not
  // learning).
  Mutex mu{"BspSimulation.mu"};
  uint64_t total_steps = 0;
  Timer timer;
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::thread> workers;
    workers.reserve(num_cores);
    for (int c = 0; c < num_cores; ++c) {
      workers.emplace_back([&, c, r] {
        auto env = envs::MakeEnv(env_name);
        std::vector<float> policy(
            static_cast<size_t>(env->ActionDim()) * env->StateDim() + env->ActionDim(), 0.0f);
        int steps = 0;
        envs::RolloutLinearPolicy(*env, policy, seed_base + static_cast<uint64_t>(r) * num_cores + c,
                                  max_steps, &steps);
        MutexLock lock(mu);
        total_steps += steps;
      });
    }
    // Global barrier: the round ends when the slowest rollout ends.
    for (auto& w : workers) {
      w.join();
    }
  }
  SimulationResult result;
  result.total_steps = total_steps;
  result.timesteps_per_second = static_cast<double>(total_steps) / timer.ElapsedSeconds();
  return result;
}

MpiPpoResult MpiPpo(SimNetwork& net, const std::vector<NodeId>& ranks, const MpiPpoConfig& config) {
  int n = config.num_ranks;
  RAY_CHECK(static_cast<int>(ranks.size()) >= n);
  size_t dim =
      static_cast<size_t>(config.policy_action_dim) * config.policy_state_dim + config.policy_action_dim;
  Rng init(13);
  std::vector<float> policy = init.NormalVector(dim, 0.0, 0.05);

  std::barrier<> sync(n);
  Mutex mu{"MpiPpo.mu"};
  uint64_t grand_total_steps = 0;
  std::vector<std::vector<float>> grads(n, std::vector<float>(dim, 0.0f));

  Timer timer;
  auto rank_fn = [&](int i) {
    Rng rng(1000 + i);
    for (int it = 0; it < config.iterations; ++it) {
      // Rollout phase: every rank collects its share of the global quota;
      // the barrier means the slowest rank's tail rollout stalls everyone.
      uint64_t quota = static_cast<uint64_t>(config.steps_per_batch) / n;
      uint64_t steps = 0;
      std::fill(grads[i].begin(), grads[i].end(), 0.0f);
      double baseline = 0.0;
      int episodes = 0;
      while (steps < quota) {
        uint64_t seed = rng.Engine()();
        Rng eps_rng(seed);
        std::vector<float> eps = eps_rng.NormalVector(dim);
        std::vector<float> noisy = policy;
        for (size_t k = 0; k < dim; ++k) {
          noisy[k] += config.noise_sigma * eps[k];
        }
        auto env = envs::MakeEnv(config.env);
        int ep_steps = 0;
        float reward = envs::RolloutLinearPolicy(*env, noisy, seed, config.rollout_max_steps, &ep_steps);
        steps += ep_steps;
        ++episodes;
        baseline += (reward - baseline) / episodes;
        for (size_t k = 0; k < dim; ++k) {
          grads[i][k] += (reward - static_cast<float>(baseline)) * eps[k];
        }
      }
      {
        MutexLock lock(mu);
        grand_total_steps += steps;
      }
      sync.arrive_and_wait();  // global barrier before the gradient exchange

      // Gradient allreduce (ring, single stream per rank).
      for (int s = 0; s < n - 1; ++s) {
        Status st = net.Transfer(ranks[i], ranks[(i + 1) % n], dim / n * sizeof(float), 1);
        RAY_CHECK(st.ok());
        sync.arrive_and_wait();
      }
      // Every rank applies the identical update (emulated with rank 0's
      // reduction applied globally at the barrier below).
      sync.arrive_and_wait();
      if (i == 0) {
        std::vector<float> sum(dim, 0.0f);
        for (int r = 0; r < n; ++r) {
          for (size_t k = 0; k < dim; ++k) {
            sum[k] += grads[r][k];
          }
        }
        // Optimizer compute on every rank in the real system; charged once
        // per rank via the loop below (identical duration).
        float scale = config.lr / (config.noise_sigma * n);
        for (size_t k = 0; k < dim; ++k) {
          policy[k] += scale * sum[k];
        }
      }
      // SGD-epoch burn on every (GPU) rank — symmetric architecture.
      volatile float sink = 0.0f;
      for (int e = 0; e < config.sgd_epochs; ++e) {
        for (int m = 0; m < config.minibatch / 64; ++m) {
          float acc = 0.0f;
          for (size_t k = 0; k < dim; ++k) {
            acc += policy[k] * grads[i][k];
          }
          sink = sink + acc;
        }
      }
      (void)sink;
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back(rank_fn, i);
  }
  for (auto& t : threads) {
    t.join();
  }
  MpiPpoResult result;
  result.wall_seconds = timer.ElapsedSeconds();
  result.total_steps = grand_total_steps;
  result.gpu_ranks = n;
  return result;
}

}  // namespace baselines
}  // namespace ray
