// Distributed prioritized experience replay (Ape-X) with live cluster
// introspection: while exploration tasks and the learner run, the
// GCS-backed tools (Fig. 5's Web UI / profiling boxes) snapshot the cluster
// and export a Chrome-tracing timeline — all of it queries over the GCS,
// with zero instrumentation inside the components.
#include <cstdio>

#include "common/clock.h"
#include "raylib/replay.h"
#include "tools/inspector.h"

int main() {
  using namespace ray;

  ClusterConfig config;
  config.num_nodes = 4;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  Cluster cluster(config);
  raylib::RegisterApexSupport(cluster);
  Ray ray = Ray::OnNode(cluster, 0);

  raylib::ApexConfig apex;
  apex.num_states = 12;
  apex.num_workers = 4;
  apex.iterations = 40;

  tools::Profiler profiler(&cluster);
  Timer wall;
  std::printf("training a Q policy for the %d-state chain MDP with %d explorers...\n",
              apex.num_states, apex.num_workers);
  int64_t start = wall.ElapsedMicros();
  auto report = raylib::RunApex(ray, apex);
  profiler.RecordEvent("driver", "apex_training", start, wall.ElapsedMicros());
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // Inspect the cluster after training (the Web UI's data source).
  tools::ClusterInspector inspector(&cluster);
  std::printf("\n%s\n", inspector.Render().c_str());

  // Evaluate the greedy policy against the known optimum.
  raylib::ChainMdp env(apex.num_states);
  int state = env.Reset();
  bool terminal = false;
  float total = 0;
  int steps = 0;
  while (!terminal && steps++ < apex.num_states * 4) {
    int action = report->q[state * 2 + 1] > report->q[state * 2] ? 1 : 0;
    total += env.Step(action, &state, &terminal);
  }
  float optimal = raylib::ChainMdp::OptimalQ(0, apex.num_states, 1.0f);
  std::printf("greedy episode reward: %.1f (optimal %.1f) after %d learn steps, %.1fs\n", total,
              optimal, report->learn_steps, report->wall_seconds);

  // Export the profiler timeline (load into chrome://tracing).
  std::string trace = profiler.ExportChromeTrace({"driver"});
  std::printf("\nchrome trace (%zu bytes): %.120s...\n", trace.size(), trace.c_str());
  return terminal && total > optimal - 1.0f ? 0 : 1;
}
