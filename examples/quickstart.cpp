// Quickstart: the full Ray API surface (Table 1 of the paper) in one
// program — remote functions, futures chained without blocking, ray.wait,
// actors with stateful method chains, and nested remote functions.
#include <cstdio>
#include <numeric>

#include "runtime/api.h"

namespace {

// Plain C++ functions become remote functions once registered.
int Square(int x) { return x * x; }

int Sum(std::vector<int> values) { return std::accumulate(values.begin(), values.end(), 0); }

// Nested remote functions: tasks can submit tasks (Section 3.1).
int SumOfSquares(int n) {
  ray::Ray ray = ray::Ray::Current();
  std::vector<ray::ObjectRef<int>> futures;
  for (int i = 1; i <= n; ++i) {
    futures.push_back(ray.Call<int>("square", i));
  }
  int total = 0;
  for (auto& f : futures) {
    total += *ray.Get(f);
  }
  return total;
}

// A stateful actor.
class CounterActor {
 public:
  int Add(int x) {
    total_ += x;
    return total_;
  }

 private:
  int total_ = 0;
};

}  // namespace

int main() {
  using namespace ray;

  // Bring up a 4-node cluster (each node: local scheduler + object store +
  // workers), a sharded GCS, and a global scheduler.
  ClusterConfig config;
  config.num_nodes = 4;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  Cluster cluster(config);

  cluster.RegisterFunction("square", &Square);
  cluster.RegisterFunction("sum", &Sum);
  cluster.RegisterFunction("sum_of_squares", &SumOfSquares);
  cluster.RegisterActorClass<CounterActor>("Counter");
  cluster.RegisterActorMethod("Counter", "Add", &CounterActor::Add);

  Ray ray = Ray::OnNode(cluster, 0);

  // 1. futures = f.remote(args): non-blocking submission.
  auto nine = ray.Call<int>("square", 3);

  // 2. Futures compose without ray.get: pass them straight into other tasks.
  auto eighty_one = ray.Call<int>("square", nine);
  std::printf("square(square(3)) = %d\n", *ray.Get(eighty_one));

  // 3. ray.wait: react to whichever tasks finish first.
  std::vector<ObjectRef<int>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(ray.Call<int>("square", i));
  }
  auto first_three = ray.Wait(batch, 3, 1'000'000);
  std::printf("first %zu tasks done while others may still run\n", first_three.size());

  // 4. Actors: stateful computation with serial method execution.
  ActorHandle counter = ray.CreateActor("Counter");
  for (int i = 1; i <= 10; ++i) {
    counter.Call<int>("Add", i);
  }
  std::printf("counter total = %d (methods ran in order on one instance)\n",
              *ray.Get(counter.Call<int>("Add", 0)));

  // 5. Nested tasks: a remote function that fans out its own remote calls.
  std::printf("sum of squares 1..10 = %d\n", *ray.Get(ray.Call<int>("sum_of_squares", 10)));

  // 6. ray.put for explicit object-store writes.
  auto data = ray.Put(std::vector<int>{1, 2, 3, 4});
  std::printf("sum over object store = %d\n", *ray.Get(ray.Call<int>("sum", data)));

  return 0;
}
