// Distributed training with a sharded parameter server (Section 5.2.1, the
// Fig. 3 pattern): model-replica actors pull weights, compute real MLP
// gradients on synthetic data, and push scaled gradients back to PS shard
// actors. The whole pipeline is ordinary Ray tasks and actors — no
// specialized system.
#include <cstdio>

#include "raylib/sgd.h"

int main() {
  using namespace ray;

  ClusterConfig config;
  config.num_nodes = 1;  // driver
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  Cluster cluster(config);
  raylib::RegisterSgdSupport(cluster);

  // 4 worker nodes (model replicas) and 2 parameter-server nodes.
  raylib::SgdConfig sgd_config;
  sgd_config.layer_sizes = {32, 64, 32, 8};
  sgd_config.batch = 16;
  sgd_config.lr = 0.05f;
  for (int i = 0; i < 4; ++i) {
    std::string tag = "w" + std::to_string(i);
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {tag, 1}});
    sgd_config.worker_placements.push_back(ResourceSet{{"CPU", 1}, {tag, 1}});
  }
  for (int i = 0; i < 2; ++i) {
    std::string tag = "ps" + std::to_string(i);
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {tag, 1}});
    sgd_config.ps_placements.push_back(ResourceSet{{"CPU", 1}, {tag, 1}});
  }

  Ray ray = Ray::OnNode(cluster, 0);
  raylib::DataParallelSgd sgd(ray, sgd_config);

  std::printf("running 20 synchronized SGD iterations on 4 replicas / 2 PS shards...\n");
  auto throughput = sgd.Run(20);
  if (!throughput.ok()) {
    std::printf("training failed: %s\n", throughput.status().ToString().c_str());
    return 1;
  }
  std::printf("throughput: %.0f samples/s\n", *throughput);

  // The shards hold the trained weights; fetch and inspect them.
  nn::Mlp probe(sgd_config.layer_sizes);
  raylib::ShardedParameterServer ps(ray, static_cast<int>(probe.NumParams()),
                                    {ResourceSet::Cpu(1)});
  std::printf("model has %zu parameters across %d PS shards\n", probe.NumParams(),
              static_cast<int>(sgd_config.ps_placements.size()));
  return 0;
}
