// End-to-end RL: train a swing-up policy for the Pendulum environment with
// Evolution Strategies (Section 5.3.1). Simulation tasks fan out across the
// cluster; gradient estimates fold through an aggregation-tree of actors;
// the improved policy is then *served* from the same program — the
// training/simulation/serving loop the paper argues needs one system.
#include <cstdio>

#include "raylib/env.h"
#include "raylib/es.h"

int main() {
  using namespace ray;

  ClusterConfig config;
  config.num_nodes = 4;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  config.scheduler.spillover_queue_threshold = 2;
  Cluster cluster(config);
  raylib::RegisterEsSupport(cluster);
  Ray ray = Ray::OnNode(cluster, 0);

  raylib::EsConfig es_config;
  es_config.env = "pendulum";
  es_config.policy_state_dim = 3;  // cos(theta), sin(theta), theta_dot
  es_config.policy_action_dim = 1;
  es_config.iterations = 40;
  es_config.evaluations_per_iteration = 64;
  es_config.rollout_max_steps = 200;
  es_config.sigma = 0.5f;   // swing-up needs aggressive exploration
  es_config.lr = 1.0f;      // normalized step size
  es_config.tree_aggregation = true;
  es_config.num_aggregators = 2;

  raylib::EvolutionStrategies es(ray, es_config);

  // Baseline: the random policy's cost (pendulum rewards are negative),
  // averaged over several episodes.
  auto probe = [](const std::vector<float>& policy) {
    float total = 0;
    for (uint64_t s = 0; s < 5; ++s) {
      auto env = envs::MakeEnv("pendulum");
      int steps = 0;
      total += envs::RolloutLinearPolicy(*env, policy, 100 + s, 200, &steps);
    }
    return total / 5;
  };
  float before = probe(es.policy());
  std::printf("random policy mean episode reward: %.1f\n", before);

  auto report = es.Train();
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  float after = probe(es.policy());
  std::printf("trained policy mean episode reward: %.1f  (%.1fs wall)\n", after,
              report->wall_seconds);
  std::printf("improvement: %+.1f reward\n", after - before);

  // Serve the trained policy in a closed loop against a fresh environment.
  auto serve_env = envs::MakeEnv("pendulum");
  std::vector<float> state = serve_env->Reset(7);
  float served_reward = 0.0f;
  bool done = false;
  const auto& policy = es.policy();
  while (!done) {
    float a = policy[3];  // bias
    for (int s = 0; s < 3; ++s) {
      a += policy[s] * state[s];
    }
    float reward = 0.0f;
    state = serve_env->Step({std::tanh(a) * 2.0f}, &reward, &done);
    served_reward += reward;
  }
  std::printf("served one closed-loop episode: reward %.1f\n", served_reward);
  return after > before ? 0 : 1;
}
