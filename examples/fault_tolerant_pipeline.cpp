// Fault tolerance demo: a data pipeline keeps producing correct results
// while cluster nodes die underneath it. Lineage in the GCS re-executes lost
// tasks transparently, and a checkpointed actor is reconstructed on a fresh
// node with its state intact (Sections 4.2.1, 4.2.3).
#include <cstdio>

#include "runtime/api.h"

namespace {

std::vector<float> Generate(int n, float v) { return std::vector<float>(n, v); }

float Stage(std::vector<float> data, float scale) {
  float total = 0;
  for (float x : data) {
    total += x * scale;
  }
  return total;
}

class RunningStats {
 public:
  float Observe(float x) {
    ++count_;
    total_ += x;
    return total_ / count_;
  }

  void SaveCheckpoint(ray::Writer& w) const {
    ray::Put(w, count_);
    ray::Put(w, total_);
  }
  void RestoreCheckpoint(ray::Reader& r) {
    count_ = ray::Take<int>(r);
    total_ = ray::Take<float>(r);
  }

 private:
  int count_ = 0;
  float total_ = 0;
};

}  // namespace

int main() {
  using namespace ray;

  ClusterConfig config;
  config.num_nodes = 5;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  config.actor_checkpoint_interval = 8;  // checkpoint every 8 method calls
  Cluster cluster(config);
  cluster.RegisterFunction("generate", &Generate);
  cluster.RegisterFunction("stage", &Stage);
  cluster.RegisterActorClass<RunningStats>("RunningStats");
  cluster.RegisterActorMethod("RunningStats", "Observe", &RunningStats::Observe);

  // Pin the stats actor away from the driver so we can kill its node later.
  NodeId actor_node = cluster.AddNodeWithResources(ResourceSet{{"CPU", 1}, {"stats", 1}});
  cluster.AddNodeWithResources(ResourceSet{{"CPU", 1}, {"stats", 1}});  // recovery spare

  Ray ray = Ray::OnNode(cluster, 0);
  ActorHandle stats = ray.CreateActor("RunningStats", ResourceSet{{"CPU", 1}, {"stats", 1}});

  auto run_batch = [&](int batches) {
    ObjectRef<float> mean;
    for (int b = 0; b < batches; ++b) {
      auto data = ray.Call<std::vector<float>>("generate", 1000, 1.0f);
      auto reduced = ray.Call<float>("stage", data, 0.5f);
      mean = stats.Call<float>("Observe", reduced);
    }
    return *ray.Get(mean, 60'000'000);
  };

  std::printf("pipeline mean after 10 batches: %.1f\n", run_batch(10));

  // Kill two worker nodes; in-flight and stored intermediates die with them.
  std::printf("killing 2 of %zu nodes...\n", cluster.NumNodes());
  cluster.KillNode(3);
  cluster.KillNode(4);
  std::printf("pipeline mean after 10 more batches: %.1f (lineage re-executed lost work)\n",
              run_batch(10));

  // Kill the actor's node: it recovers from its checkpoint elsewhere.
  std::printf("killing the stats actor's node...\n");
  cluster.KillNode(actor_node);
  float mean = run_batch(5);
  std::printf("pipeline mean after actor recovery: %.1f (state preserved: %s)\n", mean,
              mean == 500.0f ? "yes" : "NO");
  return mean == 500.0f ? 0 : 1;
}
