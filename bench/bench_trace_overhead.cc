// Tracing overhead + paper-style task timeline. Part 1 reruns the Fig. 8b
// throughput workload (8 nodes, 2ms tasks) with tracing compiled in but
// disabled, sampled (the default), and full, to measure what the tracer
// costs on the task-submission hot path — the acceptance bar is <3%
// regression for default sampling vs disabled. Part 2 runs a 1000-task
// two-phase workload with cross-node data dependencies under full-detail
// tracing and exports the merged cross-node timeline as chrome://tracing
// JSON plus a per-stage latency breakdown (submit, dep-wait, queue, exec,
// transfer, GCS-commit, ...). Results land in BENCH_trace_overhead.json.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "runtime/api.h"
#include "trace/collector.h"
#include "trace/trace.h"

namespace ray {
namespace {

constexpr int kTaskMs = 2;

int SleepTask(int ms) {
  SleepMicros(static_cast<int64_t>(ms) * 1000);
  return ms;
}

std::vector<float> Produce(int elements) { return std::vector<float>(elements, 1.0f); }

float Consume(std::vector<float> data) {
  float sum = 0;
  for (float v : data) {
    sum += v;
  }
  return sum;
}

double RunThroughput(int num_nodes, int tasks_per_node, trace::TraceMode mode) {
  // Default TraceConfig apart from the mode: the acceptance bar is "default
  // sampling vs tracing compiled in but disabled", so measure the defaults.
  trace::TraceConfig cfg;
  cfg.mode = mode;
  trace::Tracer::Instance().Configure(cfg);
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.num_workers = 4;
  config.scheduler.spillover_queue_threshold = 1u << 20;  // keep tasks local
  config.gcs.num_shards = 4;
  config.num_global_schedulers = 2;
  config.net.control_latency_us = 20;
  Cluster cluster(config);
  cluster.RegisterFunction("sleep_task", &SleepTask);
  SleepMicros(30'000);  // first heartbeats

  // Untimed warmup batch: the first Emit on each thread allocates (and
  // first-touch zeroes) that thread's trace ring — ~1MB across ~100 emitting
  // threads per cluster. That one-time setup cost is not steady-state
  // throughput, so pay it before the timer starts (with tracing off it
  // never happens, which would otherwise show up as ~4% phantom overhead).
  {
    std::vector<std::thread> warm;
    for (int n = 0; n < num_nodes; ++n) {
      warm.emplace_back([&, n] {
        Ray ray = Ray::OnNode(cluster, n);
        std::vector<ObjectRef<int>> refs;
        for (int t = 0; t < 8; ++t) {
          refs.push_back(ray.Call<int>("sleep_task", kTaskMs));
        }
        for (auto& ref : refs) {
          RAY_CHECK(ray.Get(ref, 300'000'000).ok());
        }
      });
    }
    for (auto& d : warm) {
      d.join();
    }
  }

  Timer timer;
  std::vector<std::thread> drivers;
  for (int n = 0; n < num_nodes; ++n) {
    drivers.emplace_back([&, n] {
      Ray ray = Ray::OnNode(cluster, n);
      std::vector<ObjectRef<int>> refs;
      refs.reserve(tasks_per_node);
      for (int t = 0; t < tasks_per_node; ++t) {
        refs.push_back(ray.Call<int>("sleep_task", kTaskMs));
      }
      for (auto& ref : refs) {
        auto r = ray.Get(ref, 300'000'000);
        RAY_CHECK(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(num_nodes) * tasks_per_node / seconds;
}

struct TimelineResult {
  size_t events = 0;
  size_t timelines = 0;
  size_t cross_node_timelines = 0;
  trace::LatencyBreakdown breakdown;
  bool json_written = false;
};

// 1000 tasks across 4 nodes: each node's driver produces objects locally,
// then consumes the neighbouring node's objects — every consumer has a
// remote input, so the trace must show dep-wait, fetch and wire transfer
// alongside submit/queue/exec/put and the GCS commits underneath.
TimelineResult RunTimeline(int total_tasks, const std::string& trace_path) {
  trace::TraceConfig cfg;
  cfg.mode = trace::TraceMode::kFull;
  cfg.ring_capacity = 8192;  // keep the whole 1000-task run in the rings
  trace::Tracer::Instance().Configure(cfg);
  constexpr int kNodes = 4;
  int per_node = total_tasks / (2 * kNodes);  // half producers, half consumers
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.num_workers = 4;
  // Route every submission through the global scheduler: its locality-aware
  // placement runs consumers next to their (remote) input, away from the
  // submitting driver's node — the timelines the trace must stitch across
  // nodes. Queue-pressure spillover alone is too timing-dependent here.
  config.scheduler.always_forward_to_global = true;
  config.gcs.num_shards = 4;
  config.net.control_latency_us = 20;
  Cluster cluster(config);
  cluster.RegisterFunction("produce", &Produce);
  cluster.RegisterFunction("consume", &Consume);
  SleepMicros(30'000);

  constexpr int kElements = 16 * 1024;  // 64KB objects: real transfers
  std::vector<std::vector<ObjectRef<std::vector<float>>>> produced(kNodes);
  {
    std::vector<std::thread> drivers;
    for (int n = 0; n < kNodes; ++n) {
      drivers.emplace_back([&, n] {
        Ray ray = Ray::OnNode(cluster, n);
        for (int t = 0; t < per_node; ++t) {
          produced[n].push_back(ray.Call<std::vector<float>>("produce", kElements));
        }
        for (auto& ref : produced[n]) {
          RAY_CHECK(ray.Get(ref, 300'000'000).ok());
        }
      });
    }
    for (auto& d : drivers) {
      d.join();
    }
  }
  {
    std::vector<std::thread> drivers;
    for (int n = 0; n < kNodes; ++n) {
      drivers.emplace_back([&, n] {
        Ray ray = Ray::OnNode(cluster, n);
        std::vector<ObjectRef<float>> refs;
        for (const auto& input : produced[(n + 1) % kNodes]) {
          refs.push_back(ray.Call<float>("consume", input));
        }
        for (auto& ref : refs) {
          RAY_CHECK(ray.Get(ref, 300'000'000).ok());
        }
      });
    }
    for (auto& d : drivers) {
      d.join();
    }
  }

  trace::Collector collector;
  std::vector<trace::TraceEvent> events = collector.Snapshot();
  TimelineResult result;
  result.events = events.size();
  result.breakdown = trace::Collector::Breakdown(events);
  auto timelines = trace::Collector::StitchTasks(events);
  result.timelines = timelines.size();
  for (const auto& tl : timelines) {
    if (tl.num_nodes > 1) {
      ++result.cross_node_timelines;
    }
  }
  result.json_written = collector.WriteChromeTrace(trace_path).ok();
  return result;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Tracing overhead", "ring-buffer tracer cost on the Fig. 8b throughput path",
                "8 nodes, 4 workers/node, 2ms tasks; modes off/sampled/full; 1k-task timeline");
  // Many short reps beat few long ones here: the host's background noise
  // arrives as multi-second slowdowns, and best-of-N converges on runs that
  // land inside quiet windows.
  int per_node = bench::QuickMode() ? 150 : 400;
  const int kReps = bench::QuickMode() ? 3 : 10;
  bench::BenchJson json("trace_overhead");
  json.Set("task_ms", kTaskMs)
      .Set("tasks_per_node", per_node)
      .Set("nodes", 8)
      .Set("sample_period", 16);

  std::printf("-- throughput by trace mode (8 nodes, best of %d) --\n", kReps);
  std::printf("%-10s %-14s %-12s\n", "mode", "tasks/s", "overhead");
  // This workload is driver-bound (submission cost ~1.7ms/task, GCS-write
  // dominated), and run-to-run drift is several percent — the same scale as
  // the effect being measured. Interleave the modes round-robin, rotating
  // the order each round so every mode visits every position (drift within
  // a round is position-correlated), discard a warmup run (first-touch page
  // faults), and take best-of-N per mode.
  const trace::TraceMode kModes[] = {trace::TraceMode::kOff, trace::TraceMode::kSampled,
                                     trace::TraceMode::kFull};
  RunThroughput(8, per_node, trace::TraceMode::kOff);  // warmup, discarded
  double best[3] = {0, 0, 0};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 3; ++i) {
      int m = (rep + i) % 3;
      double tput = RunThroughput(8, per_node, kModes[m]);
      std::printf("  rep %d %-8s %.0f tasks/s (%llu events)\n", rep,
                  trace::TraceModeName(kModes[m]), tput,
                  static_cast<unsigned long long>(trace::Tracer::Instance().EventsRecorded()));
      best[m] = std::max(best[m], tput);
    }
  }
  double off = best[0];
  for (int m = 0; m < 3; ++m) {
    double tput = best[m];
    double overhead_pct = off > 0 ? (off - tput) / off * 100.0 : 0.0;
    std::printf("%-10s %-14.0f %+.2f%%\n", trace::TraceModeName(kModes[m]), tput, overhead_pct);
    json.AddRow("throughput", {{"mode", static_cast<double>(kModes[m])},
                               {"tasks_per_s", tput},
                               {"overhead_pct", overhead_pct}});
    if (kModes[m] == trace::TraceMode::kSampled) {
      json.Set("overhead_sampled_pct", overhead_pct);
    }
    if (kModes[m] == trace::TraceMode::kFull) {
      json.Set("overhead_full_pct", overhead_pct);
    }
  }

  std::printf("\n-- 1000-task cross-node timeline (full detail) --\n");
  const std::string trace_path = "trace_timeline.json";
  TimelineResult tl = RunTimeline(1000, trace_path);
  std::printf("%zu events, %zu task timelines (%zu cross-node) -> %s\n", tl.events, tl.timelines,
              tl.cross_node_timelines, trace_path.c_str());
  std::printf("%s", tl.breakdown.Render().c_str());
  json.Set("timeline_events", static_cast<double>(tl.events));
  json.Set("timeline_tasks", static_cast<double>(tl.timelines));
  json.Set("timeline_cross_node_tasks", static_cast<double>(tl.cross_node_timelines));
  json.Set("timeline_json_written", tl.json_written ? 1.0 : 0.0);
  // Acceptance: the full-detail breakdown covers the whole lifecycle.
  const std::pair<trace::Stage, const char*> required[] = {
      {trace::Stage::kSubmit, "covers_submit"},   {trace::Stage::kDepWait, "covers_dep_wait"},
      {trace::Stage::kQueue, "covers_queue"},     {trace::Stage::kExec, "covers_exec"},
      {trace::Stage::kTransfer, "covers_transfer"}, {trace::Stage::kGcsCommit, "covers_gcs_commit"},
  };
  bool all_covered = true;
  for (const auto& [stage, key] : required) {
    bool covered = tl.breakdown.Covers(stage);
    all_covered = all_covered && covered;
    json.Set(key, covered ? 1.0 : 0.0);
  }
  std::printf("lifecycle coverage (submit/dep-wait/queue/exec/transfer/gcs-commit): %s\n",
              all_covered ? "complete" : "INCOMPLETE");
  json.Write();
  return 0;
}
