// Table 4: simulation throughput (Pendulum timesteps/s) — MPI-style bulk
// synchronous rounds vs Ray asynchronous tasks. Rollouts have heterogeneous
// lengths; a BSP round ends only when its slowest rollout ends, while Ray
// keeps every core busy by gathering results with ray.wait and resubmitting
// immediately. Paper: Ray reaches up to 1.8x the BSP throughput at scale.
#include <cstdio>

#include "baselines/mpi.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "raylib/env.h"
#include "runtime/api.h"

namespace ray {
namespace {

// A rollout task: runs one episode in the named env, returns steps simulated.
int SimRollout(std::string env_name, uint64_t seed, int max_steps) {
  auto env = envs::MakeEnv(env_name);
  std::vector<float> policy(static_cast<size_t>(env->ActionDim()) * env->StateDim() + env->ActionDim(),
                            0.0f);
  int steps = 0;
  envs::RolloutLinearPolicy(*env, policy, seed, max_steps, &steps);
  return steps;
}

double RayAsyncThroughput(int cores, int total_tasks) {
  ClusterConfig config;
  config.num_nodes = std::max(1, cores / 2);
  config.scheduler.total_resources = ResourceSet::Cpu(cores / std::max(1, cores / 2));
  config.scheduler.spillover_queue_threshold = 1;
  config.net.control_latency_us = 10;
  Cluster cluster(config);
  cluster.RegisterFunction("sim_rollout", &SimRollout);
  Ray ray = Ray::OnNode(cluster, 0);
  SleepMicros(30'000);

  Timer timer;
  uint64_t seed = 1;
  std::vector<ObjectRef<int>> in_flight;
  int submitted = 0;
  auto submit = [&] {
    in_flight.push_back(ray.Call<int>("sim_rollout", std::string("pendulum_sim"), seed++, 2000));
    ++submitted;
  };
  // The paper submits 3n tasks up front (Table 4 methodology).
  for (int i = 0; i < 3 * cores && submitted < total_tasks; ++i) {
    submit();
  }
  uint64_t total_steps = 0;
  int completed = 0;
  while (completed < total_tasks) {
    auto ready = ray.Wait(in_flight, 1, 120'000'000);
    RAY_CHECK(!ready.empty());
    size_t idx = ready[0];
    auto steps = ray.Get(in_flight[idx], 120'000'000);
    RAY_CHECK(steps.ok());
    total_steps += *steps;
    ++completed;
    in_flight.erase(in_flight.begin() + static_cast<long>(idx));
    if (submitted < total_tasks) {
      submit();
    }
  }
  return static_cast<double>(total_steps) / timer.ElapsedSeconds();
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Table 4", "Pendulum simulation timesteps/s: MPI bulk-synchronous vs Ray async",
                "1-256 cores -> 1-8 logical cores; 20us/step simulated; episodes 200-2000 steps");
  int rounds = bench::QuickMode() ? 4 : 10;

  bench::BenchJson json("simulation");
  json.Set("rounds", rounds);
  std::printf("%-8s %-24s %-24s %-8s\n", "cores", "MPI BSP (steps/s)", "Ray async (steps/s)",
              "ratio");
  for (int cores : {1, 4, 8}) {
    auto bsp = baselines::BspSimulation(cores, "pendulum_sim", rounds, 2000, 7);
    double ray_tput = RayAsyncThroughput(cores, rounds * cores);
    std::printf("%-8d %-24.0f %-24.0f %-8.2f\n", cores, bsp.timesteps_per_second, ray_tput,
                ray_tput / bsp.timesteps_per_second);
    json.AddRow("cores", {{"cores", static_cast<double>(cores)},
                          {"bsp_steps_s", bsp.timesteps_per_second},
                          {"ray_steps_s", ray_tput},
                          {"ratio", ray_tput / bsp.timesteps_per_second}});
  }
  json.Write();
  std::printf("\npaper: 22.6K vs 22.3K (1 CPU), 208K vs 290K (16), 2.16M vs 4.03M (256) —\n"
              "parity at 1 core, Ray pulling ahead as heterogeneous rollout lengths make\n"
              "BSP rounds wait on stragglers.\n");
  return 0;
}
