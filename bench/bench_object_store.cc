// Fig. 9: object store write throughput and IOPS. Large-object writes are
// memcpy-bound (thread sweep 1-16 over the parallel copy path); small-object
// writes are dominated by per-object overheads (metadata + location
// publication), reported as IOPS. NOTE: on a single-core machine the thread
// sweep cannot show real speedup — the series is still printed so the shape
// can be compared on larger hardware.
//
// Also benches the pull data plane (BENCH_data_plane.json): chunk-size sweep
// of a remote pull (chunked pipelining vs the monolithic pre-refactor shape)
// and duplicate-pull fan-in (N concurrent Gets of one remote object dedup
// into a single transfer). `--smoke` runs only a tiny data-plane pass — the
// tier-1 CI hook.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "gcs/tables.h"
#include "net/sim_network.h"
#include "objectstore/object_store.h"
#include "objectstore/pull_manager.h"

namespace ray {
namespace {

struct StoreFixture {
  explicit StoreFixture(int threads)
      : gcs(gcs::GcsConfig{}), tables(&gcs), net(NetConfig{}), store(NodeId::FromRandom(), &tables,
                                                                    &net, MakeConfig(threads)) {}

  static ObjectStoreConfig MakeConfig(int threads) {
    ObjectStoreConfig config;
    config.capacity_bytes = 8ull << 30;
    config.num_transfer_threads = threads;
    return config;
  }

  gcs::Gcs gcs;
  gcs::GcsTables tables;
  SimNetwork net;
  ObjectStore store;
};

// One write = allocate destination + parallel memcpy from the client source
// + seal (publish location). This is the client->shared-memory copy path.
double WriteThroughputGbps(StoreFixture& fx, size_t object_bytes, int threads, int iterations) {
  std::vector<uint8_t> source(object_bytes, 0xab);
  ThreadPool pool(static_cast<size_t>(threads));
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    auto buffer = std::make_shared<Buffer>(object_bytes);
    ParallelCopy(buffer->MutableData(), source.data(), object_bytes, threads, pool);
    fx.store.Put(ObjectId::FromRandom(), std::move(buffer));
  }
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(object_bytes) * iterations / seconds / 1e9;
}

double WriteIops(StoreFixture& fx, size_t object_bytes, int iterations) {
  std::vector<uint8_t> source(object_bytes, 0xcd);
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    fx.store.Put(ObjectId::FromRandom(), std::make_shared<Buffer>(source.data(), object_bytes));
  }
  return iterations / timer.ElapsedSeconds();
}

// --- data plane: pull path ---

// Fast simulated interconnect: wire time is comparable to memcpy time, so
// the chunk pipeline's transfer/copy overlap is visible in wall clock.
NetConfig DataPlaneNet() {
  NetConfig config;
  config.latency_us = 20;
  config.link_bandwidth_bytes_s = 5e9;
  config.per_stream_bandwidth_bytes_s = 1.25e9;
  return config;
}

struct PullFixture {
  explicit PullFixture(size_t chunk_bytes)
      : gcs(gcs::GcsConfig{}),
        tables(&gcs),
        net(DataPlaneNet()),
        src(NodeId::FromRandom(), &tables, &net, MakeConfig(chunk_bytes)),
        dst(NodeId::FromRandom(), &tables, &net, MakeConfig(chunk_bytes)) {
    auto resolver = [this](const NodeId& id) -> ObjectStore* {
      if (id == src.node()) {
        return &src;
      }
      return id == dst.node() ? &dst : nullptr;
    };
    src.SetPeerResolver(resolver);
    dst.SetPeerResolver(resolver);
  }

  static ObjectStoreConfig MakeConfig(size_t chunk_bytes) {
    ObjectStoreConfig config;
    config.capacity_bytes = 2ull << 30;
    config.num_transfer_threads = 4;
    config.pull_chunk_bytes = chunk_bytes;
    return config;
  }

  gcs::Gcs gcs;
  gcs::GcsTables tables;
  SimNetwork net;
  ObjectStore src;
  ObjectStore dst;
};

// One cold remote pull of `object_bytes` with the given chunking; fresh
// fixture per run so nothing is cached. Returns seconds, or < 0 on failure.
double PullOnceSeconds(size_t object_bytes, size_t chunk_bytes) {
  PullFixture fx(chunk_bytes);
  ObjectId id = ObjectId::FromRandom();
  auto buffer = std::make_shared<Buffer>(object_bytes);
  std::memset(buffer->MutableData(), 0x5a, object_bytes);
  fx.src.Put(id, std::move(buffer));
  Timer timer;
  if (!fx.dst.Fetch(id, fx.src.node()).ok()) {
    return -1.0;
  }
  return timer.ElapsedSeconds();
}

struct FaninResult {
  double seconds = -1.0;
  uint64_t wire_bytes = 0;
  uint64_t transfers = 0;
  uint64_t deduped = 0;
};

// N concurrent Gets of one remote object: with in-flight dedup they ride a
// single pull (wire bytes == object bytes), where the old thread-per-Get
// path moved the object N times.
FaninResult DuplicatePullFanin(size_t object_bytes, int getters) {
  PullFixture fx(/*chunk_bytes=*/8ull << 20);
  ObjectId id = ObjectId::FromRandom();
  auto buffer = std::make_shared<Buffer>(object_bytes);
  std::memset(buffer->MutableData(), 0x77, object_bytes);
  fx.src.Put(id, std::move(buffer));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(getters);
  Timer timer;
  for (int i = 0; i < getters; ++i) {
    threads.emplace_back([&] {
      if (!fx.dst.Get(id, 30'000'000).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  FaninResult r;
  if (failures.load() == 0) {
    r.seconds = timer.ElapsedSeconds();
  }
  r.wire_bytes = fx.net.TotalBytesTransferred();
  r.transfers = fx.net.NumTransfers();
  r.deduped = fx.dst.pull_manager().NumPullsDeduped();
  return r;
}

// Runs the data-plane benches; returns false if any pull failed (smoke gate).
bool RunDataPlane(bool smoke) {
  bool quick = smoke || bench::QuickMode();
  bench::BenchJson json("data_plane");
  size_t object_bytes = quick ? (32ull << 20) : (128ull << 20);
  int iterations = quick ? 2 : 5;
  json.Set("object_bytes", static_cast<double>(object_bytes));
  bool ok = true;

  std::printf("\n-- pull chunk-size sweep (%s remote object, best of %d) --\n",
              bench::HumanBytes(object_bytes).c_str(), iterations);
  std::printf("%-12s %-10s %-10s\n", "chunk", "ms", "GB/s");
  double monolithic_gbps = 0.0;
  double best_chunked_gbps = 0.0;
  std::vector<size_t> chunk_sizes{0, 2ull << 20, 4ull << 20, 8ull << 20, 16ull << 20};
  for (size_t chunk : chunk_sizes) {
    double best = -1.0;
    for (int i = 0; i < iterations; ++i) {
      double secs = PullOnceSeconds(object_bytes, chunk);
      if (secs < 0) {
        ok = false;
        continue;
      }
      if (best < 0 || secs < best) {
        best = secs;
      }
    }
    if (best < 0) {
      continue;
    }
    double gbps = static_cast<double>(object_bytes) / best / 1e9;
    if (chunk == 0) {
      monolithic_gbps = gbps;
    } else if (gbps > best_chunked_gbps) {
      best_chunked_gbps = gbps;
    }
    std::printf("%-12s %-10.2f %-10.2f\n",
                chunk == 0 ? "monolithic" : bench::HumanBytes(chunk).c_str(), best * 1e3, gbps);
    json.AddRow("chunk_sweep", {{"chunk_bytes", static_cast<double>(chunk)},
                                {"seconds", best},
                                {"gbps", gbps}});
  }
  if (monolithic_gbps > 0 && best_chunked_gbps > 0) {
    std::printf("chunked-vs-monolithic speedup: %.2fx\n", best_chunked_gbps / monolithic_gbps);
    json.Set("monolithic_gbps", monolithic_gbps);
    json.Set("best_chunked_gbps", best_chunked_gbps);
    json.Set("chunked_speedup", best_chunked_gbps / monolithic_gbps);
  }

  size_t fanin_bytes = quick ? (16ull << 20) : (64ull << 20);
  std::printf("\n-- duplicate-pull fan-in (%s object, concurrent Gets) --\n",
              bench::HumanBytes(fanin_bytes).c_str());
  std::printf("%-8s %-10s %-12s %-10s\n", "getters", "ms", "wire bytes", "dedup");
  for (int getters : {1, 2, 4, 8, 16}) {
    FaninResult r = DuplicatePullFanin(fanin_bytes, getters);
    if (r.seconds < 0) {
      ok = false;
      continue;
    }
    double dedup = static_cast<double>(fanin_bytes) * getters / static_cast<double>(r.wire_bytes);
    std::printf("%-8d %-10.2f %-12s %.1fx\n", getters, r.seconds * 1e3,
                bench::HumanBytes(r.wire_bytes).c_str(), dedup);
    json.AddRow("fanin", {{"getters", static_cast<double>(getters)},
                          {"object_bytes", static_cast<double>(fanin_bytes)},
                          {"seconds", r.seconds},
                          {"wire_bytes", static_cast<double>(r.wire_bytes)},
                          {"transfers", static_cast<double>(r.transfers)},
                          {"dedup_factor", dedup}});
  }
  json.Write();
  return ok;
}

}  // namespace
}  // namespace ray

int main(int argc, char** argv) {
  using namespace ray;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) {
    // Tier-1 CI hook: tiny data-plane pass, nonzero exit if any pull fails.
    bench::Banner("data plane smoke", "pull chunk sweep + duplicate-pull fan-in", "smoke sizes");
    bool ok = RunDataPlane(/*smoke=*/true);
    std::printf(ok ? "data plane smoke: OK\n" : "data plane smoke: FAILED\n");
    return ok ? 0 : 1;
  }
  bench::Banner("Figure 9", "object store write throughput (GB/s) and IOPS",
                "sizes 1KB-1GB -> 1KB-256MB; threads {1,2,4,8,16}; single-core host caveat in text");
  bench::BenchJson json("object_store");

  std::printf("-- write throughput (GB/s) by object size and copy threads --\n");
  std::printf("%-10s", "obj size");
  for (int threads : {1, 2, 4, 8, 16}) {
    std::printf(" t=%-8d", threads);
  }
  std::printf("\n");
  size_t max_size = bench::QuickMode() ? (16ull << 20) : (256ull << 20);
  for (size_t bytes = 1ull << 20; bytes <= max_size; bytes *= 4) {
    std::printf("%-10s", bench::HumanBytes(bytes).c_str());
    for (int threads : {1, 2, 4, 8, 16}) {
      StoreFixture fx(threads);
      int iters = static_cast<int>(std::max<size_t>(3, (64ull << 20) / bytes));
      double gbps = WriteThroughputGbps(fx, bytes, threads, iters);
      std::printf(" %-10.2f", gbps);
      json.AddRow("write_throughput", {{"bytes", static_cast<double>(bytes)},
                                       {"threads", static_cast<double>(threads)},
                                       {"gbps", gbps}});
    }
    std::printf("\n");
  }

  std::printf("\n-- small-object IOPS (single client) --\n");
  std::printf("%-10s %-12s\n", "obj size", "IOPS");
  for (size_t bytes : {1ull << 10, 10ull << 10, 100ull << 10}) {
    StoreFixture fx(1);
    double iops = WriteIops(fx, bytes, bench::QuickMode() ? 2000 : 20000);
    std::printf("%-10s %-12.0f\n", bench::HumanBytes(bytes).c_str(), iops);
    json.AddRow("iops", {{"bytes", static_cast<double>(bytes)}, {"iops", iops}});
  }
  json.Write();

  return RunDataPlane(/*smoke=*/false) ? 0 : 1;
}
