// Fig. 9: object store write throughput and IOPS. Large-object writes are
// memcpy-bound (thread sweep 1-16 over the parallel copy path); small-object
// writes are dominated by per-object overheads (metadata + location
// publication), reported as IOPS. NOTE: on a single-core machine the thread
// sweep cannot show real speedup — the series is still printed so the shape
// can be compared on larger hardware.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "gcs/tables.h"
#include "net/sim_network.h"
#include "objectstore/object_store.h"

namespace ray {
namespace {

struct StoreFixture {
  explicit StoreFixture(int threads)
      : gcs(gcs::GcsConfig{}), tables(&gcs), net(NetConfig{}), store(NodeId::FromRandom(), &tables,
                                                                    &net, MakeConfig(threads)) {}

  static ObjectStoreConfig MakeConfig(int threads) {
    ObjectStoreConfig config;
    config.capacity_bytes = 8ull << 30;
    config.num_transfer_threads = threads;
    return config;
  }

  gcs::Gcs gcs;
  gcs::GcsTables tables;
  SimNetwork net;
  ObjectStore store;
};

// One write = allocate destination + parallel memcpy from the client source
// + seal (publish location). This is the client->shared-memory copy path.
double WriteThroughputGbps(StoreFixture& fx, size_t object_bytes, int threads, int iterations) {
  std::vector<uint8_t> source(object_bytes, 0xab);
  ThreadPool pool(static_cast<size_t>(threads));
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    auto buffer = std::make_shared<Buffer>(object_bytes);
    ParallelCopy(buffer->MutableData(), source.data(), object_bytes, threads, pool);
    fx.store.Put(ObjectId::FromRandom(), std::move(buffer));
  }
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(object_bytes) * iterations / seconds / 1e9;
}

double WriteIops(StoreFixture& fx, size_t object_bytes, int iterations) {
  std::vector<uint8_t> source(object_bytes, 0xcd);
  Timer timer;
  for (int i = 0; i < iterations; ++i) {
    fx.store.Put(ObjectId::FromRandom(), std::make_shared<Buffer>(source.data(), object_bytes));
  }
  return iterations / timer.ElapsedSeconds();
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 9", "object store write throughput (GB/s) and IOPS",
                "sizes 1KB-1GB -> 1KB-256MB; threads {1,2,4,8,16}; single-core host caveat in text");
  bench::BenchJson json("object_store");

  std::printf("-- write throughput (GB/s) by object size and copy threads --\n");
  std::printf("%-10s", "obj size");
  for (int threads : {1, 2, 4, 8, 16}) {
    std::printf(" t=%-8d", threads);
  }
  std::printf("\n");
  size_t max_size = bench::QuickMode() ? (16ull << 20) : (256ull << 20);
  for (size_t bytes = 1ull << 20; bytes <= max_size; bytes *= 4) {
    std::printf("%-10s", bench::HumanBytes(bytes).c_str());
    for (int threads : {1, 2, 4, 8, 16}) {
      StoreFixture fx(threads);
      int iters = static_cast<int>(std::max<size_t>(3, (64ull << 20) / bytes));
      double gbps = WriteThroughputGbps(fx, bytes, threads, iters);
      std::printf(" %-10.2f", gbps);
      json.AddRow("write_throughput", {{"bytes", static_cast<double>(bytes)},
                                       {"threads", static_cast<double>(threads)},
                                       {"gbps", gbps}});
    }
    std::printf("\n");
  }

  std::printf("\n-- small-object IOPS (single client) --\n");
  std::printf("%-10s %-12s\n", "obj size", "IOPS");
  for (size_t bytes : {1ull << 10, 10ull << 10, 100ull << 10}) {
    StoreFixture fx(1);
    double iops = WriteIops(fx, bytes, bench::QuickMode() ? 2000 : 20000);
    std::printf("%-10s %-12.0f\n", bench::HumanBytes(bytes).c_str(), iops);
    json.AddRow("iops", {{"bytes", static_cast<double>(bytes)}, {"iops", iops}});
  }
  json.Write();
  return 0;
}
