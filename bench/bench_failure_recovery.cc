// Failure detection and recovery latency. Four measurements:
//   1. time-to-detect: kill a node, poll the liveness view until the
//      heartbeat monitor declares it dead, across (interval x threshold)
//      detector settings. The acceptance bar is median detection within 2x
//      the configured bound interval*threshold.
//   2. time-to-recover a lost Fig. 11a chain: kill every holder of a task
//      chain's intermediate results and time the get() that transparently
//      rebuilds them from lineage.
//   3. time-to-recover a checkpointed actor: kill its node and time the next
//      method call (creation re-run + checkpoint restore + tail replay).
//   4. GCS chain kill/rejoin latency spike (the Fig. 10a view): max
//      client-observed latency through a chain-member kill.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "gcs/chain.h"
#include "runtime/api.h"

namespace ray {
namespace {

int Increment(int x) { return x + 1; }

class Counter {
 public:
  int Add(int x) {
    total_ += x;
    return total_;
  }
  int Total() { return total_; }
  void SaveCheckpoint(Writer& w) const { Put(w, total_); }
  void RestoreCheckpoint(Reader& r) { total_ = Take<int>(r); }

 private:
  int total_ = 0;
};

ClusterConfig BaseConfig(int nodes, int64_t heartbeat_us, int threshold) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  config.scheduler.heartbeat_interval_us = heartbeat_us;
  config.monitor.miss_threshold = threshold;
  config.net.latency_us = 10;
  config.net.control_latency_us = 5;
  return config;
}

// Median microseconds from KillNode to the liveness view flipping, over
// `trials` kills in one cluster (each kill gets a replacement node first so
// the population never drains).
double MeasureDetectLatency(int64_t heartbeat_us, int threshold, int trials,
                            ray::bench::BenchJson* json) {
  auto cluster = std::make_unique<Cluster>(BaseConfig(2 + trials, heartbeat_us, threshold));
  SleepMicros(4 * heartbeat_us);  // everyone heartbeats at least once
  std::vector<double> samples;
  for (int t = 0; t < trials; ++t) {
    NodeId victim = cluster->node(static_cast<size_t>(1 + t)).id();
    int64_t killed_at = NowMicros();
    cluster->KillNode(victim);
    while (cluster->liveness().IsAlive(victim)) {
      SleepMicros(100);
    }
    samples.push_back(static_cast<double>(NowMicros() - killed_at));
  }
  double median = bench::Percentile(samples, 0.5);
  double bound = static_cast<double>(heartbeat_us * threshold);
  std::printf("  interval=%-6lld threshold=%d  bound=%6.1fms  median detect=%6.1fms  (%.2fx)\n",
              static_cast<long long>(heartbeat_us), threshold, bound / 1000.0, median / 1000.0,
              median / bound);
  json->AddRow("detect", {{"heartbeat_interval_us", static_cast<double>(heartbeat_us)},
                          {"miss_threshold", static_cast<double>(threshold)},
                          {"bound_us", bound},
                          {"median_detect_us", median},
                          {"p100_detect_us", bench::Percentile(samples, 1.0)},
                          {"ratio", median / bound}});
  return median / bound;
}

double MeasureChainRecovery() {
  auto cluster = std::make_unique<Cluster>(BaseConfig(4, 5'000, 3));
  cluster->RegisterFunction("inc", &Increment);
  Ray ray = Ray::OnNode(*cluster, 0);
  std::vector<ObjectRef<int>> chain;
  auto ref = ray.Call<int>("inc", 0);
  chain.push_back(ref);
  for (int i = 1; i < 10; ++i) {
    ref = ray.Call<int>("inc", ref);
    chain.push_back(ref);
  }
  auto warm = ray.Get(ref, 20'000'000);
  RAY_CHECK(warm.ok() && *warm == 10);

  for (size_t i = 1; i < 4; ++i) {
    cluster->KillNode(i);
  }
  cluster->AddNode();
  cluster->AddNode();
  for (const auto& r : chain) {
    cluster->node(0).store().DeleteLocal(r.id());
  }
  Timer t;
  auto again = ray.Get(ref, 60'000'000);
  double us = static_cast<double>(t.ElapsedMicros());
  RAY_CHECK(again.ok() && *again == 10);
  return us;
}

double MeasureActorRecovery() {
  ClusterConfig config = BaseConfig(2, 5'000, 3);
  config.actor_checkpoint_interval = 5;
  auto cluster = std::make_unique<Cluster>(config);
  cluster->RegisterActorClass<Counter>("Counter");
  cluster->RegisterActorMethod("Counter", "Add", &Counter::Add);
  cluster->RegisterActorMethod("Counter", "Total", &Counter::Total);
  NodeId home = cluster->AddNodeWithResources(ResourceSet{{"CPU", 2}, {"tag", 1}});
  cluster->AddNodeWithResources(ResourceSet{{"CPU", 2}, {"tag", 1}});
  Ray ray = Ray::OnNode(*cluster, 0);
  ActorHandle acc = ray.CreateActor("Counter", ResourceSet{{"CPU", 1}, {"tag", 1}});
  for (int i = 0; i < 20; ++i) {
    acc.Call<int>("Add", 1);
  }
  auto warm = ray.Get(acc.Call<int>("Total"), 20'000'000);
  RAY_CHECK(warm.ok() && *warm == 20);

  cluster->KillNode(home);
  Timer t;
  auto after = ray.Get(acc.Call<int>("Total"), 60'000'000);
  double us = static_cast<double>(t.ElapsedMicros());
  RAY_CHECK(after.ok() && *after == 20);
  return us;
}

double MeasureGcsKillSpike(double run_seconds) {
  gcs::ChainConfig config;
  config.num_replicas = 2;
  config.hop_latency_us = 25;
  config.failure_detection_us = 8000;
  gcs::ChainShard chain(config);
  const std::string value(512, 'v');
  double kill_at = run_seconds * 0.4;
  double max_us = 0;
  Timer wall;
  bool killed = false;
  uint64_t seq = 0;
  while (wall.ElapsedSeconds() < run_seconds) {
    if (!killed && wall.ElapsedSeconds() >= kill_at) {
      chain.KillReplica(0);
      killed = true;
    }
    std::string key = "key" + std::to_string(seq++ % 1000);
    Timer w;
    chain.Put(key, value);
    max_us = std::max(max_us, static_cast<double>(w.ElapsedMicros()));
    Timer r;
    auto got = chain.Get(key);
    max_us = std::max(max_us, static_cast<double>(r.ElapsedMicros()));
    RAY_CHECK(got.ok());
  }
  return max_us;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Failure detection & recovery",
                "time-to-detect vs (interval x threshold); time-to-recover chain / actor; "
                "GCS chain kill spike",
                "single process; detector settings scaled to ms-range heartbeats");

  bench::BenchJson json("failure_recovery");
  int trials = bench::QuickMode() ? 2 : 5;

  std::printf("time-to-detect (median over %d kills):\n", trials);
  struct Setting {
    int64_t interval_us;
    int threshold;
  };
  std::vector<Setting> settings = {{5'000, 3}, {10'000, 5}, {20'000, 5}};
  if (bench::QuickMode()) {
    settings.resize(1);
  }
  double worst_ratio = 0;
  for (const Setting& s : settings) {
    worst_ratio =
        std::max(worst_ratio, MeasureDetectLatency(s.interval_us, s.threshold, trials, &json));
  }
  std::printf("worst median/bound ratio: %.2fx (acceptance: <= 2x)\n\n", worst_ratio);

  double chain_us = MeasureChainRecovery();
  std::printf("chain reconstruction (10 lost intermediates): %.1fms\n", chain_us / 1000.0);
  double actor_us = MeasureActorRecovery();
  std::printf("checkpointed actor recovery (20 calls, ckpt@5): %.1fms\n", actor_us / 1000.0);
  double spike_us = MeasureGcsKillSpike(bench::QuickMode() ? 0.8 : 2.0);
  std::printf("GCS chain kill spike: max client latency %.1fms (paper: < 30ms)\n",
              spike_us / 1000.0);

  json.Set("worst_detect_ratio", worst_ratio)
      .Set("chain_recover_us", chain_us)
      .Set("actor_recover_us", actor_us)
      .Set("gcs_kill_spike_us", spike_us);
  json.Write();
  return 0;
}
