// Fig. 11b: actor reconstruction from checkpoints. A fleet of counter actors
// spread over tagged nodes receives a continuous method stream; two nodes
// are killed mid-run, and the affected actors are re-created elsewhere,
// replaying their method log from the last checkpoint. The paper's claim:
// checkpointing bounds replay (500 re-executed methods vs 10k without).
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "runtime/api.h"

namespace ray {
namespace {

std::atomic<uint64_t> g_method_executions{0};

class StreamCounter {
 public:
  int Bump(int delta) {
    SleepMicros(2000);
    total_ += delta;
    g_method_executions.fetch_add(1);
    return total_;
  }
  int Total() { return total_; }

  void SaveCheckpoint(Writer& w) const { Put(w, total_); }
  void RestoreCheckpoint(Reader& r) { total_ = Take<int>(r); }

 private:
  int total_ = 0;
};

struct RunResult {
  uint64_t submitted = 0;
  uint64_t executed = 0;
  double wall_seconds = 0;
  bool state_correct = true;
};

RunResult Run(uint64_t checkpoint_interval, int methods_per_actor_before, int methods_per_actor_after) {
  g_method_executions.store(0);
  ClusterConfig config;
  config.num_nodes = 1;  // node 0 hosts only the driver
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  config.actor_checkpoint_interval = checkpoint_interval;
  config.net.control_latency_us = 5;
  Cluster cluster(config);
  cluster.RegisterActorClass<StreamCounter>("StreamCounter");
  cluster.RegisterActorMethod("StreamCounter", "Bump", &StreamCounter::Bump);
  cluster.RegisterActorMethod("StreamCounter", "Total", &StreamCounter::Total);

  const int num_actor_nodes = 5;
  const int actors_per_node = 2;
  std::vector<NodeId> actor_nodes;
  for (int i = 0; i < num_actor_nodes; ++i) {
    std::string tag = "an" + std::to_string(i);
    actor_nodes.push_back(
        cluster.AddNodeWithResources(ResourceSet{{"CPU", 1.0 * actors_per_node}, {tag, 1.0 * actors_per_node}}));
  }

  Ray ray = Ray::OnNode(cluster, 0);
  std::vector<ActorHandle> actors;
  for (int i = 0; i < num_actor_nodes; ++i) {
    std::string tag = "an" + std::to_string(i);
    for (int a = 0; a < actors_per_node; ++a) {
      actors.push_back(ray.CreateActor("StreamCounter", ResourceSet{{"CPU", 1}, {tag, 1}}));
    }
  }
  // Spare capacity for recovered actors (recovery needs matching tags).
  for (int i = 0; i < 2; ++i) {
    std::string tag0 = "an" + std::to_string(i);
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {tag0, 2}});
  }

  RunResult result;
  Timer wall;
  std::vector<ObjectRef<int>> last(actors.size());
  auto pump = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (size_t a = 0; a < actors.size(); ++a) {
        last[a] = actors[a].Call<int>("Bump", 1);
        ++result.submitted;
      }
    }
  };
  pump(methods_per_actor_before);
  for (auto& ref : last) {
    RAY_CHECK(ray.Get(ref, 120'000'000).ok());
  }
  // Kill the first two actor nodes: 4 of 10 actors must recover (paper: 400
  // of 2000 across 2 of 10 nodes).
  cluster.KillNode(actor_nodes[0]);
  cluster.KillNode(actor_nodes[1]);

  pump(methods_per_actor_after);
  for (size_t a = 0; a < actors.size(); ++a) {
    auto total = ray.Get(actors[a].Call<int>("Total"), 180'000'000);
    RAY_CHECK(total.ok()) << total.status().ToString();
    int expected = methods_per_actor_before + methods_per_actor_after;
    if (*total != expected) {
      result.state_correct = false;
    }
  }
  result.executed = g_method_executions.load();
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 11b", "actor recovery: checkpointing bounds method replay",
                "2000 actors/10 nodes -> 10 actors/5 nodes; kill 2 nodes mid-stream");
  int before = bench::QuickMode() ? 33 : 63;  // mid-checkpoint-interval kill
  int after = bench::QuickMode() ? 10 : 20;

  // Checkpoint-interval ablation (DESIGN.md): smaller intervals bound
  // replay tighter at the cost of more frequent checkpoint writes.
  bench::BenchJson json("actor_reconstruction");
  json.Set("methods_before_kill", before).Set("methods_after_kill", after);
  std::printf("%-22s %-12s %-12s %-12s %-10s %-8s\n", "checkpoint interval", "submitted",
              "executed", "replayed", "wall (s)", "state");
  for (uint64_t interval : {uint64_t{0}, uint64_t{5}, uint64_t{10}, uint64_t{25}}) {
    auto r = Run(interval, before, after);
    json.AddRow("intervals",
                {{"checkpoint_interval", static_cast<double>(interval)},
                 {"submitted", static_cast<double>(r.submitted)},
                 {"executed", static_cast<double>(r.executed)},
                 {"replayed", static_cast<double>(r.executed) - static_cast<double>(r.submitted)},
                 {"wall_s", r.wall_seconds},
                 {"state_correct", r.state_correct ? 1.0 : 0.0}});
    char label[32];
    if (interval == 0) {
      std::snprintf(label, sizeof(label), "none (full replay)");
    } else {
      std::snprintf(label, sizeof(label), "every %llu",
                    static_cast<unsigned long long>(interval));
    }
    std::printf("%-22s %-12llu %-12llu %-12lld %-10.2f %-8s\n", label,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.executed),
                static_cast<long long>(r.executed) - static_cast<long long>(r.submitted),
                r.wall_seconds, r.state_correct ? "OK" : "WRONG");
  }
  std::printf("\nexpectation: replayed method count shrinks by ~the checkpoint interval ratio\n"
              "(paper: 500 re-executions with checkpointing vs 10k without).\n");
  json.Write();
  return 0;
}
