// Fig. 12a: ring allreduce on Ray vs an OpenMPI-like baseline, and Ray*
// (Ray restricted to one transfer stream, as the paper restricts Ray to one
// send/receive thread). Ray's multi-stream transfers saturate the simulated
// 25Gbps link, while single-stream transfers cap below it — the paper's
// explanation for Ray beating OpenMPI by 1.5-2x at 100MB/1GB. At small
// sizes, per-task scheduling overhead makes MPI faster (the crossover).
//
// Fig. 12b: the same allreduce with artificial scheduler latency injected on
// every task submission; a few ms of added latency roughly doubles
// completion time, which is why a centralized scheduler (tens of ms) cannot
// support this workload.
#include <cstdio>

#include "baselines/mpi.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "raylib/allreduce.h"

namespace ray {
namespace {

struct RaySetup {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<raylib::RingAllreduce> ring;
  std::unique_ptr<Ray> driver;
};

// The simulated wire runs with 100x time dilation (25Gbps -> 31.25MB/s
// aggregate, 13MB/s per stream) so that wire time, not host memcpy, is the
// dominant term for every compared system — the relative shapes are what
// the figure reports.
NetConfig DilatedNet() {
  NetConfig net;
  net.latency_us = 100;
  net.control_latency_us = 30;
  net.link_bandwidth_bytes_s = 31.25e6;
  net.per_stream_bandwidth_bytes_s = 13e6;
  return net;
}

RaySetup MakeRaySetup(int n, int transfer_threads) {
  ClusterConfig config;
  config.num_nodes = 1;  // driver-only node
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  config.store.num_transfer_threads = transfer_threads;
  config.net = DilatedNet();
  RaySetup setup;
  setup.cluster = std::make_unique<Cluster>(config);
  raylib::RegisterAllreduceSupport(*setup.cluster);
  std::vector<ResourceSet> placements;
  for (int i = 0; i < n; ++i) {
    std::string tag = "ring" + std::to_string(i);
    setup.cluster->AddNodeWithResources(ResourceSet{{"CPU", 2}, {tag, 1}});
    placements.push_back(ResourceSet{{"CPU", 1}, {tag, 1}});
  }
  setup.driver = std::make_unique<Ray>(Ray::OnNode(*setup.cluster, 0));
  setup.ring = std::make_unique<raylib::RingAllreduce>(*setup.driver, placements);
  return setup;
}

// Loads per-worker buffers in place, then times one allreduce.
double TimeRayAllreduce(RaySetup& setup, size_t elements, int iterations) {
  auto& workers = setup.ring->workers();
  std::vector<ObjectRef<int>> fills;
  for (size_t i = 0; i < workers.size(); ++i) {
    fills.push_back(workers[i].Call<int>("FillBuffer", static_cast<int>(elements), 1.0f));
  }
  for (auto& f : fills) {
    RAY_CHECK(setup.driver->Get(f, 300'000'000).ok());
  }
  double total = 0;
  for (int it = 0; it < iterations; ++it) {
    Timer timer;
    auto last = raylib::SubmitRingAllreduce(workers);
    for (auto& ref : last) {
      RAY_CHECK(setup.driver->Get(ref, 300'000'000).ok());
    }
    total += timer.ElapsedSeconds();
  }
  return total / iterations;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 12a",
                "ring allreduce: Ray (multi-stream) vs Ray* (1 stream) vs MPI-like baseline",
                "16 nodes/10MB-1GB -> 8 nodes/1-32MB; 100x time-dilated wire for all systems");
  const int n = 8;
  size_t max_mb = bench::QuickMode() ? 8 : 32;
  bench::BenchJson json("allreduce");
  json.Set("nodes", n);

  std::printf("%-10s %-14s %-14s %-14s\n", "obj size", "Ray (ms)", "Ray* (ms)", "MPI (ms)");
  for (size_t mb = 1; mb <= max_mb; mb *= 8) {
    size_t elements = mb << 20 >> 2;  // floats
    int iters = mb >= 32 ? 1 : 2;
    double ray_ms, ray_star_ms;
    {
      auto ray_setup = MakeRaySetup(n, 8);
      ray_ms = TimeRayAllreduce(ray_setup, elements, iters) * 1000;
    }
    {
      auto ray_star_setup = MakeRaySetup(n, 1);
      ray_star_ms = TimeRayAllreduce(ray_star_setup, elements, iters) * 1000;
    }
    SimNetwork net(DilatedNet());
    std::vector<NodeId> ranks;
    for (int i = 0; i < n; ++i) {
      ranks.push_back(NodeId::FromRandom());
    }
    auto mpi = baselines::MpiRingAllreduce(net, ranks, elements, iters);
    std::printf("%-10s %-14.1f %-14.1f %-14.1f\n", bench::HumanBytes(mb << 20).c_str(), ray_ms,
                ray_star_ms, mpi.seconds_per_iteration * 1000);
    json.AddRow("sizes", {{"mb", static_cast<double>(mb)},
                          {"ray_ms", ray_ms},
                          {"ray_star_ms", ray_star_ms},
                          {"mpi_ms", mpi.seconds_per_iteration * 1000}});
  }

  std::printf("\n");
  bench::Banner("Figure 12b", "allreduce sensitivity to scheduler latency",
                "16 nodes/100MB -> 8 nodes/8MB; injected latency {0,1,5,10}ms");
  size_t elements = (8ull << 20) >> 2;
  std::printf("%-22s %-18s\n", "added latency (ms)", "iteration (ms)");
  for (int added_ms : {0, 1, 5, 10}) {
    auto setup = MakeRaySetup(n, 8);
    setup.cluster->net().SetExtraSchedulerLatencyMicros(added_ms * 1000);
    double ms = TimeRayAllreduce(setup, elements, 1) * 1000;
    std::printf("+%-21d %-18.1f\n", added_ms, ms);
    json.AddRow("latency_sensitivity",
                {{"added_ms", static_cast<double>(added_ms)}, {"iteration_ms", ms}});
  }
  json.Write();
  return 0;
}
