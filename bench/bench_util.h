// Shared helpers for the per-figure/table benchmark binaries. Each binary
// prints its paper anchor (figure/table number), the rows/series the paper
// reports, and the machine scale-down it applies. RAY_BENCH_QUICK=1 shrinks
// everything further for smoke runs.
//
// Besides the console output, benches emit a machine-readable
// BENCH_<name>.json (throughput, latency percentiles, config) via BenchJson,
// written to RAY_BENCH_JSON_DIR (default: current directory) so CI and
// before/after comparisons can diff runs without scraping stdout.
#ifndef RAY_BENCH_BENCH_UTIL_H_
#define RAY_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace ray {
namespace bench {

inline bool QuickMode() {
  const char* v = std::getenv("RAY_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

inline void Banner(const std::string& anchor, const std::string& what, const std::string& scaling) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", anchor.c_str(), what.c_str());
  std::printf("scale-down: %s\n", scaling.c_str());
  std::printf("==================================================================\n");
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.0fGB", static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.0fKB", static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

// Linear-interpolated percentile of an (unsorted) sample, q in [0, 1].
inline double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  double pos = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

// Accumulates one bench run and writes it as BENCH_<name>.json. Supports
// scalar fields (numbers / strings) and flat arrays of numeric rows; that is
// enough for every bench's (config, throughput, percentiles) shape.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& Set(const std::string& key, double value) {
    scalars_.emplace_back(key, Number(value));
    return *this;
  }
  BenchJson& Set(const std::string& key, const std::string& value) {
    scalars_.emplace_back(key, Quote(value));
    return *this;
  }

  // Appends {"field": value, ...} to the array `array_name`.
  BenchJson& AddRow(const std::string& array_name,
                    std::initializer_list<std::pair<const char*, double>> fields) {
    std::string row = "{";
    bool first = true;
    for (const auto& [k, v] : fields) {
      if (!first) {
        row += ", ";
      }
      first = false;
      row += Quote(k) + ": " + Number(v);
    }
    row += "}";
    auto it = std::find_if(arrays_.begin(), arrays_.end(),
                           [&](const auto& a) { return a.first == array_name; });
    if (it == arrays_.end()) {
      arrays_.emplace_back(array_name, std::vector<std::string>{std::move(row)});
    } else {
      it->second.push_back(std::move(row));
    }
    return *this;
  }

  std::string Path() const {
    const char* dir = std::getenv("RAY_BENCH_JSON_DIR");
    std::string prefix = (dir != nullptr && dir[0] != '\0') ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + name_ + ".json";
  }

  void Write() const {
    std::string out = "{\n";
    out += "  " + Quote("bench") + ": " + Quote(name_);
    for (const auto& [k, v] : scalars_) {
      out += ",\n  " + Quote(k) + ": " + v;
    }
    for (const auto& [name, rows] : arrays_) {
      out += ",\n  " + Quote(name) + ": [\n";
      for (size_t i = 0; i < rows.size(); ++i) {
        out += "    " + rows[i] + (i + 1 < rows.size() ? ",\n" : "\n");
      }
      out += "  ]";
    }
    out += "\n}\n";
    std::string path = Path();
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("[bench json: %s]\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
  }

 private:
  static std::string Number(double v) {
    if (!std::isfinite(v)) {
      return "null";
    }
    char buf[32];
    if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += "\"";
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<std::string, std::vector<std::string>>> arrays_;
};

}  // namespace bench
}  // namespace ray

#endif  // RAY_BENCH_BENCH_UTIL_H_
