// Shared helpers for the per-figure/table benchmark binaries. Each binary
// prints its paper anchor (figure/table number), the rows/series the paper
// reports, and the machine scale-down it applies. RAY_BENCH_QUICK=1 shrinks
// everything further for smoke runs.
#ifndef RAY_BENCH_BENCH_UTIL_H_
#define RAY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ray {
namespace bench {

inline bool QuickMode() {
  const char* v = std::getenv("RAY_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

inline void Banner(const std::string& anchor, const std::string& what, const std::string& scaling) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", anchor.c_str(), what.c_str());
  std::printf("scale-down: %s\n", scaling.c_str());
  std::printf("==================================================================\n");
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.0fGB", static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.0fKB", static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace ray

#endif  // RAY_BENCH_BENCH_UTIL_H_
