// Table 3: embedded serving throughput — Ray actor (shared-memory argument
// passing) vs a Clipper-like REST server (text encode/decode + socket per
// request). Two workloads as in the paper: a 10ms "residual network" policy
// with small (4KB) inputs, and a 5ms fully-connected policy with large
// (100KB) inputs. The large-input case is where REST collapses (paper: 290
// vs 6900 states/s) because the payload is serialized and copied repeatedly.
#include <cstdio>

#include "baselines/rest_serving.h"
#include "bench/bench_util.h"
#include "raylib/serving.h"

namespace ray {
namespace {

struct Row {
  double ray_states_s = 0;
  double rest_states_s = 0;
};

Row RunWorkload(int state_dim, int64_t eval_us, double seconds) {
  // The model reads a fixed 256-feature prefix of each state row; model
  // compute is pinned by eval_us (as in the paper: 10ms residual net / 5ms
  // fully-connected net), while the request payload scales with state_dim.
  std::vector<int> layers = {256, 64, 8};
  const int batch = 64;
  Row row;
  {
    ClusterConfig config;
    config.num_nodes = 1;
    config.scheduler.total_resources = ResourceSet::Cpu(4);
    Cluster cluster(config);
    raylib::RegisterServingSupport(cluster);
    Ray ray = Ray::OnNode(cluster, 0);
    ActorHandle server = ray.CreateActor("PolicyServer");
    RAY_CHECK(ray.Get(server.Call<int>("Init", layers, eval_us), 10'000'000).ok());
    auto stats = raylib::DriveServing(ray, server, state_dim, batch, seconds, 2);
    row.ray_states_s = stats.states_per_second;
  }
  {
    baselines::RestServingModel rest(layers, eval_us);
    auto stats = rest.Drive(state_dim, batch, seconds, 2);
    row.rest_states_s = stats.states_per_second;
  }
  return row;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Table 3", "policy serving throughput: Ray actor vs Clipper-like REST",
                "p3.8xl co-located clients -> same-process clients; 4KB & 100KB states, batch 64");
  double seconds = bench::QuickMode() ? 0.5 : 2.0;

  // Small input (4KB state), 10ms residual-network policy.
  Row small = RunWorkload(1024, 10'000, seconds);
  // Larger input (100KB state), 5ms fully-connected policy.
  Row large = RunWorkload(25600, 5'000, seconds);

  std::printf("%-26s %-22s %-22s\n", "workload", "Clipper-like (states/s)", "Ray (states/s)");
  std::printf("%-26s %-22.0f %-22.0f\n", "small input (4KB, 10ms)", small.rest_states_s,
              small.ray_states_s);
  std::printf("%-26s %-22.0f %-22.0f\n", "larger input (100KB, 5ms)", large.rest_states_s,
              large.ray_states_s);
  std::printf("\npaper: small 4400 vs 6200; larger 290 vs 6900 — Ray's margin should widen\n"
              "dramatically on the large-input row.\n");
  bench::BenchJson json("serving");
  json.Set("drive_seconds", seconds)
      .Set("small_rest_states_s", small.rest_states_s)
      .Set("small_ray_states_s", small.ray_states_s)
      .Set("large_rest_states_s", large.rest_states_s)
      .Set("large_ray_states_s", large.ray_states_s);
  json.Write();
  return 0;
}
