// Serving-layer benchmark: open-loop Poisson load against the src/serve/
// stack (router + admission control + spread-placed ServeReplica actors).
// Three experiments, all latency-accounted from each request's *scheduled*
// arrival so a stalled router cannot hide its tail (no coordinated
// omission):
//
//   1. QPS ladder, fixed replica set (autoscaler off): walk offered load
//      upward and report the highest rate whose p99 holds the SLO with
//      negligible shedding — the sustained-QPS-at-SLO figure.
//   2. The same ladder with the autoscaler on: capacity follows demand, so
//      the sustained rate should extend past the fixed set's knee.
//   3. Mid-run node kill (autoscaler on): kill a replica's node under load
//      and measure the recovery window — time from the kill until the
//      sliding-window p99 is back under the SLO with traffic flowing.
//
// Emits BENCH_serving.json. --smoke runs one short ladder point plus a
// node-kill pass and exits nonzero on SLO/recovery failure (wired into
// scripts/run_tier1.sh). The pre-v2 Table-3 Ray-vs-REST comparison lives on
// in raylib/serving + baselines/rest_serving.
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "serve/autoscaler.h"
#include "serve/load_gen.h"
#include "serve/replica.h"
#include "serve/router.h"

namespace ray {
namespace {

constexpr int64_t kSloUs = 200'000;    // p99 target all experiments defend
constexpr int64_t kServiceUs = 2'000;  // simulated model evaluation time

std::unique_ptr<Cluster> MakeCluster(int num_nodes) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.heartbeat_interval_us = 10'000;
  config.monitor.miss_threshold = 5;  // 50ms detection bound
  config.net.control_latency_us = 5;
  auto cluster = std::make_unique<Cluster>(config);
  serve::RegisterServeSupport(*cluster);
  return cluster;
}

serve::RouterConfig MakeRouterConfig() {
  serve::RouterConfig config;
  config.slo_us = kSloUs;
  config.replica_service_us = kServiceUs;
  return config;
}

struct LadderPoint {
  double offered_qps = 0;
  serve::LoadGenReport report;
  int replicas_at_end = 0;
  bool slo_held = false;
};

// One ladder point on a fresh cluster: `replicas` fixed when `autoscale` is
// off, otherwise the autoscaler starts from 1 and follows the load.
LadderPoint RunPoint(double qps, double seconds, bool autoscale, int replicas, int max_replicas) {
  auto cluster = MakeCluster(4);
  serve::Router router(Ray::OnNode(*cluster, 0), MakeRouterConfig());
  RAY_CHECK(router.Start(autoscale ? 1 : replicas).ok());
  std::unique_ptr<serve::Autoscaler> autoscaler;
  if (autoscale) {
    serve::AutoscalerConfig as;
    as.slo_us = kSloUs;
    as.min_replicas = 1;
    as.max_replicas = max_replicas;
    as.tick_us = 50'000;
    as.up_cooldown_us = 100'000;
    autoscaler = std::make_unique<serve::Autoscaler>(&router, as);
  }
  serve::LoadGenConfig load;
  load.qps = qps;
  load.duration_us = static_cast<int64_t>(seconds * 1e6);
  load.threads = 2;
  LadderPoint point;
  point.offered_qps = qps;
  point.report = serve::RunOpenLoopLoad(router, load);
  point.replicas_at_end = router.NumHealthyReplicas();
  double shed_frac = point.report.offered > 0
                         ? static_cast<double>(point.report.shed) / point.report.offered
                         : 0.0;
  point.slo_held =
      point.report.p99_ms <= static_cast<double>(kSloUs) / 1e3 && shed_frac <= 0.01;
  if (autoscaler) {
    autoscaler->Stop();
  }
  router.Stop();
  return point;
}

void AddLadderRow(bench::BenchJson& json, const char* row, const LadderPoint& p) {
  json.AddRow(row, {{"offered_qps", p.offered_qps},
                    {"achieved_qps", p.report.achieved_qps},
                    {"p50_ms", p.report.p50_ms},
                    {"p99_ms", p.report.p99_ms},
                    {"p999_ms", p.report.p999_ms},
                    {"shed", static_cast<double>(p.report.shed)},
                    {"timed_out", static_cast<double>(p.report.timed_out)},
                    {"sessions", static_cast<double>(p.report.sessions_touched)},
                    {"replicas_at_end", static_cast<double>(p.replicas_at_end)},
                    {"slo_held", p.slo_held ? 1.0 : 0.0}});
}

struct KillResult {
  serve::LoadGenReport report;
  double recovery_ms = -1.0;  // -1: never recovered inside the run
  int healthy_at_end = 0;
};

// Node-kill pass: 3 spread replicas under steady load, one replica's node
// killed mid-run. Recovery = window p99 back under the SLO with traffic
// flowing and the lost replica re-adopted after actor recovery.
KillResult RunNodeKill(double qps, double seconds) {
  auto cluster = MakeCluster(4);
  serve::RouterConfig config = MakeRouterConfig();
  config.replica_service_us = 10'000;
  config.request_timeout_us = 300'000;
  serve::Router router(Ray::OnNode(*cluster, 0), config);
  RAY_CHECK(router.Start(3).ok());
  serve::AutoscalerConfig as;
  as.slo_us = kSloUs;
  as.min_replicas = 3;
  as.max_replicas = 4;
  serve::Autoscaler autoscaler(&router, as);

  serve::LoadGenConfig load;
  load.qps = qps;
  load.duration_us = static_cast<int64_t>(seconds * 1e6);
  load.threads = 2;
  KillResult result;
  std::thread load_thread([&] { result.report = serve::RunOpenLoopLoad(router, load); });

  SleepMicros(load.duration_us / 4);
  NodeId victim;
  auto replicas = cluster->tables().serve.GetReplicas(config.group);
  RAY_CHECK(replicas.ok());
  for (const auto& r : *replicas) {
    if (r.node != cluster->node(0).id()) {
      victim = r.node;
      break;
    }
  }
  RAY_CHECK(!victim.IsNil());
  int64_t kill_us = NowMicros();
  cluster->KillNode(victim);
  while (NowMicros() - kill_us < load.duration_us) {
    auto snap = router.latency().Snap(NowMicros());
    if (NowMicros() - kill_us > 300'000 && snap.window_count > 20 &&
        snap.window_p99_us < static_cast<double>(kSloUs) && router.NumHealthyReplicas() >= 3) {
      result.recovery_ms = static_cast<double>(NowMicros() - kill_us) / 1e3;
      break;
    }
    SleepMicros(20'000);
  }
  load_thread.join();
  result.healthy_at_end = router.NumHealthyReplicas();
  autoscaler.Stop();
  router.Stop();
  return result;
}

}  // namespace
}  // namespace ray

int main(int argc, char** argv) {
  using namespace ray;
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  bench::Banner("serving", "open-loop SLO serving: sustained QPS, autoscaling, node-kill recovery",
                "millions of user sessions -> seeded session-id space; p99 SLO 200ms, 2ms model");
  double seconds = bench::QuickMode() || smoke ? 1.5 : 2.5;

  bench::BenchJson json("serving");
  json.Set("version", 2)
      .Set("note",
           "v2 replaces the Table-3 REST comparison (still available via raylib/serving + "
           "baselines/rest_serving) with the open-loop serving harness: Poisson arrivals on a "
           "pre-committed schedule, latency from scheduled arrival (no coordinated omission), "
           "admission fast-reject, spread replicas, SLO autoscaling, node-kill recovery.")
      .Set("slo_p99_ms", static_cast<double>(kSloUs) / 1e3)
      .Set("service_ms", static_cast<double>(kServiceUs) / 1e3)
      .Set("drive_seconds", seconds);

  if (smoke) {
    LadderPoint p = RunPoint(150, seconds, /*autoscale=*/false, /*replicas=*/2, 4);
    AddLadderRow(json, "ladder_fixed", p);
    std::printf("smoke ladder: %.0f qps -> p99 %.1fms (slo %s), %llu shed, %llu sessions\n",
                p.offered_qps, p.report.p99_ms, p.slo_held ? "held" : "MISSED",
                static_cast<unsigned long long>(p.report.shed),
                static_cast<unsigned long long>(p.report.sessions_touched));
    KillResult k = RunNodeKill(100, 4.0);
    json.Set("nodekill_recovery_ms", k.recovery_ms)
        .Set("nodekill_timed_out", static_cast<double>(k.report.timed_out))
        .Set("nodekill_completed", static_cast<double>(k.report.completed));
    json.Write();
    std::printf("smoke node-kill: recovery %.0fms, %llu/%llu completed, %llu timed out\n",
                k.recovery_ms, static_cast<unsigned long long>(k.report.completed),
                static_cast<unsigned long long>(k.report.admitted),
                static_cast<unsigned long long>(k.report.timed_out));
    if (!p.slo_held) {
      std::fprintf(stderr, "smoke FAIL: p99 %.1fms missed the %.0fms SLO at %.0f qps\n",
                   p.report.p99_ms, static_cast<double>(kSloUs) / 1e3, p.offered_qps);
      return 1;
    }
    if (k.recovery_ms < 0) {
      std::fprintf(stderr, "smoke FAIL: p99 never recovered under the SLO after the node kill\n");
      return 1;
    }
    if (k.report.completed == 0) {
      std::fprintf(stderr, "smoke FAIL: node-kill run completed zero requests\n");
      return 1;
    }
    return 0;
  }

  const double ladder[] = {100, 200, 400, 800};

  std::printf("-- QPS ladder, fixed 2 replicas (autoscaler off) --\n");
  std::printf("%-10s %-12s %-9s %-9s %-8s %-9s %-9s\n", "offered", "achieved", "p50ms", "p99ms",
              "shed", "replicas", "SLO");
  double sustained_fixed = 0;
  for (double qps : ladder) {
    LadderPoint p = RunPoint(qps, seconds, false, 2, 4);
    AddLadderRow(json, "ladder_fixed", p);
    if (p.slo_held) {
      sustained_fixed = qps;
    }
    std::printf("%-10.0f %-12.0f %-9.1f %-9.1f %-8llu %-9d %-9s\n", p.offered_qps,
                p.report.achieved_qps, p.report.p50_ms, p.report.p99_ms,
                static_cast<unsigned long long>(p.report.shed), p.replicas_at_end,
                p.slo_held ? "held" : "missed");
  }

  std::printf("\n-- QPS ladder, autoscaler on (1..4 replicas) --\n");
  std::printf("%-10s %-12s %-9s %-9s %-8s %-9s %-9s\n", "offered", "achieved", "p50ms", "p99ms",
              "shed", "replicas", "SLO");
  double sustained_auto = 0;
  for (double qps : ladder) {
    LadderPoint p = RunPoint(qps, seconds, true, 1, 4);
    AddLadderRow(json, "ladder_autoscaled", p);
    if (p.slo_held) {
      sustained_auto = qps;
    }
    std::printf("%-10.0f %-12.0f %-9.1f %-9.1f %-8llu %-9d %-9s\n", p.offered_qps,
                p.report.achieved_qps, p.report.p50_ms, p.report.p99_ms,
                static_cast<unsigned long long>(p.report.shed), p.replicas_at_end,
                p.slo_held ? "held" : "missed");
  }

  std::printf("\n-- mid-run node kill (3 spread replicas, autoscaler floor 3) --\n");
  KillResult k = RunNodeKill(120, 5.0);
  std::printf("recovery window: %.0fms; %llu/%llu completed, %llu timed out, %llu rerouted, "
              "healthy at end %d\n",
              k.recovery_ms, static_cast<unsigned long long>(k.report.completed),
              static_cast<unsigned long long>(k.report.admitted),
              static_cast<unsigned long long>(k.report.timed_out),
              static_cast<unsigned long long>(k.report.rerouted), k.healthy_at_end);

  json.Set("sustained_qps_fixed", sustained_fixed)
      .Set("sustained_qps_autoscaled", sustained_auto)
      .Set("nodekill_qps", 120)
      .Set("nodekill_recovery_ms", k.recovery_ms)
      .Set("nodekill_timed_out", static_cast<double>(k.report.timed_out))
      .Set("nodekill_rerouted", static_cast<double>(k.report.rerouted))
      .Set("nodekill_completed", static_cast<double>(k.report.completed))
      .Set("nodekill_healthy_at_end", static_cast<double>(k.healthy_at_end));
  json.Write();
  return 0;
}
