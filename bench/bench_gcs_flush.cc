// Fig. 10b: GCS flushing caps the memory footprint. The paper submits 50
// million no-op tasks; lineage entries accumulate in the GCS until memory is
// exhausted unless flushing demotes them to disk. We drive the same write
// pattern (task spec + state records) directly against the GCS at scale and
// report the memory/disk split over time with flushing on vs off.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/id.h"
#include "gcs/gcs.h"
#include "gcs/tables.h"

namespace ray {
namespace {

void Run(bool flush_enabled, int num_tasks, int report_every, bench::BenchJson& json) {
  gcs::GcsConfig config;
  config.num_shards = 4;
  config.flush_threshold_bytes = flush_enabled ? (4u << 20) : 0;
  gcs::Gcs gcs(config);
  gcs.AddFlushablePrefix("task:");
  gcs::TaskTable tasks(&gcs);
  NodeId node = NodeId::FromRandom();

  std::printf("-- %s --\n", flush_enabled ? "with GCS flush (threshold 4MB)" : "no GCS flush");
  std::printf("%-12s %-14s %-14s\n", "tasks", "memory (MB)", "disk (MB)");
  const std::string spec(200, 's');  // ≈ an empty TaskSpec's serialized size
  for (int t = 1; t <= num_tasks; ++t) {
    TaskId id = TaskId::FromRandom();
    tasks.AddTask(id, spec);
    tasks.SetState(id, gcs::TaskState::kDone, node);
    if (t % report_every == 0) {
      double mem_mb = gcs.MemoryBytes() / 1048576.0;
      double disk_mb = gcs.DiskBytes() / 1048576.0;
      std::printf("%-12d %-14.2f %-14.2f\n", t, mem_mb, disk_mb);
      json.AddRow(flush_enabled ? "with_flush" : "no_flush",
                  {{"tasks", static_cast<double>(t)},
                   {"memory_mb", mem_mb},
                   {"disk_mb", disk_mb}});
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 10b", "GCS memory footprint with and without lineage flushing",
                "50M no-op tasks -> 200K lineage records");
  int tasks = bench::QuickMode() ? 20'000 : 200'000;
  bench::BenchJson json("gcs_flush");
  json.Set("num_tasks", tasks).Set("flush_threshold_mb", 4);
  Run(false, tasks, tasks / 10, json);
  Run(true, tasks, tasks / 10, json);
  std::printf("expectation: without flushing memory grows linearly (paper: workload eventually\n"
              "stalls at memory capacity); with flushing memory stays at the threshold and\n"
              "lineage accumulates on disk instead.\n");
  json.Write();
  return 0;
}
