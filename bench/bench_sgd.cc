// Fig. 13: distributed data-parallel SGD throughput ("images"/s) vs number
// of GPU workers, for three weight-synchronization strategies expressed on
// the same Ray API:
//   - allreduce of gradients (the Horovod strategy),
//   - sharded parameter server (the distributed-TensorFlow strategy),
//   - centralized driver aggregation (the anti-pattern both beat).
// The paper's claim is that Ray's general-purpose API expresses the
// specialized systems' pipelining without modification, landing within ~10%
// of them; here that reads as PS ≈ allreduce, with the centralized driver
// falling behind as workers are added.
#include <cstdio>

#include "bench/bench_util.h"
#include "raylib/sgd.h"

namespace ray {
namespace {

double Run(raylib::SyncStrategy strategy, int num_workers, int iterations) {
  ClusterConfig config;
  config.num_nodes = 1;
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  // 50x time-dilated wire (as in bench_allreduce): gradient bytes, not host
  // memcpy, dominate, preserving the paper's compute/communication ratio.
  config.net.latency_us = 100;
  config.net.control_latency_us = 20;
  config.net.link_bandwidth_bytes_s = 62.5e6;   // 50x dilation
  config.net.per_stream_bandwidth_bytes_s = 26e6;
  // Stripe even sub-MB gradient chunks: with the dilated wire a single
  // stream is the bottleneck long before the copy threshold matters.
  config.store.parallel_copy_threshold = 64 * 1024;
  Cluster cluster(config);
  raylib::RegisterSgdSupport(cluster);

  raylib::SgdConfig sgd_config;
  sgd_config.layer_sizes = {256, 512, 256, 64};  // ~280K params: 1.1MB gradients
  sgd_config.batch = 4;
  sgd_config.extra_compute_us = 30'000;  // simulated accelerator time/iteration
  sgd_config.strategy = strategy;
  for (int i = 0; i < num_workers; ++i) {
    std::string tag = "gpu" + std::to_string(i);
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {"GPU", 1}, {tag, 1}});
    sgd_config.worker_placements.push_back(ResourceSet{{"CPU", 1}, {"GPU", 1}, {tag, 1}});
  }
  int ps_shards = std::max(1, num_workers / 2);
  for (int i = 0; i < ps_shards; ++i) {
    std::string tag = "ps" + std::to_string(i);
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {tag, 1}});
    sgd_config.ps_placements.push_back(ResourceSet{{"CPU", 1}, {tag, 1}});
  }

  Ray ray = Ray::OnNode(cluster, 0);
  raylib::DataParallelSgd sgd(ray, sgd_config);
  // Warm-up pass: first iterations pay one-time costs (actor placement,
  // fetch-path subscriptions) that steady-state training amortizes.
  RAY_CHECK(sgd.Run(2).ok());
  auto tput = sgd.Run(iterations);
  RAY_CHECK(tput.ok()) << tput.status().ToString();
  return *tput;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 13", "synchronous SGD samples/s by strategy and #GPU workers",
                "ResNet-101 on 4-64 V100s -> 1.1MB-gradient MLP + 30ms simulated grad, 2-8 workers, dilated wire");
  int iters = bench::QuickMode() ? 3 : 12;
  bench::BenchJson json("sgd");
  json.Set("iterations", iters);
  std::printf("%-8s %-22s %-22s %-22s\n", "GPUs", "allreduce (smp/s)", "param server (smp/s)",
              "centralized (smp/s)");
  for (int workers : {2, 4, 8}) {
    double ar = Run(raylib::SyncStrategy::kAllreduce, workers, iters);
    double ps = Run(raylib::SyncStrategy::kParameterServer, workers, iters);
    double central = Run(raylib::SyncStrategy::kCentralizedDriver, workers, iters);
    std::printf("%-8d %-22.0f %-22.0f %-22.0f\n", workers, ar, ps, central);
    json.AddRow("strategies", {{"workers", static_cast<double>(workers)},
                               {"allreduce_smp_s", ar},
                               {"parameter_server_smp_s", ps},
                               {"centralized_smp_s", central}});
  }
  json.Write();
  std::printf("\nexpectation: allreduce ≈ parameter server (within ~10%%), both scaling with\n"
              "workers; centralized driver aggregation flattens (paper Fig. 13 shape).\n");
  return 0;
}
