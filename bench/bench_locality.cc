// Fig. 8a: locality-aware task placement. 1000 tasks (scaled) each with one
// random object dependency are placed onto one of two nodes. With the
// locality-aware global scheduler, task latency stays flat in input size;
// with locality-unaware (load-only) placement, ~half the tasks pull their
// input across the network and mean latency grows 1-2 orders of magnitude.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "runtime/api.h"

namespace ray {
namespace {

int Consume(std::vector<float> data) { return static_cast<int>(data.size()); }

double RunMode(bool locality_aware, size_t object_bytes, int num_tasks) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  // Isolate the placement policy: every task goes through the global
  // scheduler, as actor methods (the paper's "unaware" comparison) would.
  config.scheduler.always_forward_to_global = true;
  config.scheduler.heartbeat_interval_us = 5'000;
  config.global.locality_aware = locality_aware;
  config.global.default_bandwidth_bytes_s = 2.5e8;
  // Dilated wire (2Gbps-class): keeps the transfer/local-work ratio of the
  // paper's setup on a host whose local task cost is a few ms.
  config.net.latency_us = 100;
  config.net.link_bandwidth_bytes_s = 2.5e8;
  config.net.per_stream_bandwidth_bytes_s = 2.5e8;
  Cluster cluster(config);
  cluster.RegisterFunction("consume", &Consume);

  size_t elements = object_bytes / sizeof(float);
  // Objects live alternately on the two nodes.
  std::vector<ObjectRef<std::vector<float>>> objects;
  for (int i = 0; i < 8; ++i) {
    Ray owner = Ray::OnNode(cluster, i % 2);
    objects.push_back(owner.Put(std::vector<float>(elements, 1.0f)));
  }
  // Let heartbeats propagate so placement sees both nodes.
  SleepMicros(50'000);

  Ray driver = Ray::OnNode(cluster, 0);
  Rng rng(1);
  Histogram latency;
  for (int t = 0; t < num_tasks; ++t) {
    const auto& obj = objects[rng.UniformInt(0, static_cast<int64_t>(objects.size()) - 1)];
    Timer timer;
    auto ref = driver.Call<int>("consume", obj);
    auto r = driver.Get(ref, 120'000'000);
    RAY_CHECK(r.ok()) << r.status().ToString();
    latency.Observe(timer.ElapsedSeconds());
  }
  return latency.Mean();
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 8a", "locality-aware vs unaware task placement, 2 nodes",
                "tasks: 1000 -> 40/size; sizes 100KB-100MB");
  int tasks = bench::QuickMode() ? 8 : 40;
  bench::BenchJson json("locality");
  json.Set("tasks_per_size", tasks);
  std::printf("%-10s %-22s %-22s %-8s\n", "obj size", "aware mean latency (s)",
              "unaware mean latency (s)", "ratio");
  for (size_t bytes : {100ull << 10, 1ull << 20, 10ull << 20, 100ull << 20}) {
    int n = bytes >= (100ull << 20) ? std::max(8, tasks / 2) : tasks;
    double aware = RunMode(true, bytes, n);
    double unaware = RunMode(false, bytes, n);
    std::printf("%-10s %-22.5f %-22.5f %-8.1f\n", bench::HumanBytes(bytes).c_str(), aware, unaware,
                unaware / aware);
    json.AddRow("placement", {{"bytes", static_cast<double>(bytes)},
                              {"aware_mean_s", aware},
                              {"unaware_mean_s", unaware},
                              {"ratio", unaware / aware}});
  }
  json.Write();
  return 0;
}
