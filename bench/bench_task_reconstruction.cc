// Fig. 11a: transparent task reconstruction under node failure + elastic
// re-scale. Drivers run linear chains of 100ms tasks (each task depends on
// the previous output). Nodes are killed mid-run and fresh nodes are added
// later; lost intermediate objects are rebuilt from GCS lineage. The paper's
// shape: throughput dips when nodes die (re-executed tasks make up part of
// the work), then recovers to the original level once capacity returns.
#include <atomic>
#include <cstdio>
#include <thread>
#include <unordered_set>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/sync.h"
#include "runtime/api.h"

namespace ray {
namespace {

std::atomic<uint64_t> g_executions{0};
Mutex g_seen_mu{"bench_task_reconstruction.g_seen_mu"};
std::unordered_set<TaskId> g_seen;
std::atomic<uint64_t> g_reexecutions{0};

int ChainStep(int step_ms, int value) {
  SleepMicros(static_cast<int64_t>(step_ms) * 1000);
  const ExecutionContext* ctx = CurrentExecutionContext();
  if (ctx != nullptr) {
    MutexLock lock(g_seen_mu);
    if (!g_seen.insert(ctx->current_task).second) {
      g_reexecutions.fetch_add(1);
    }
  }
  g_executions.fetch_add(1);
  return value + 1;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 11a",
                "task chain throughput as nodes are killed and re-added (lineage reconstruction)",
                "100-node cluster -> 6 nodes; 100ms tasks -> 40ms; kill 2 @ t=3s, add 2 @ t=6s");

  ClusterConfig config;
  config.num_nodes = 6;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.spillover_queue_threshold = 2;  // spread chains cluster-wide
  config.net.control_latency_us = 10;
  Cluster cluster(config);
  cluster.RegisterFunction("chain_step", &ChainStep);

  double run_seconds = bench::QuickMode() ? 4.0 : 9.0;
  double kill_at = run_seconds / 3.0;
  double add_at = 2.0 * run_seconds / 3.0;
  const int task_ms = 40;
  const int num_chains = 16;

  std::atomic<bool> stop{false};
  std::vector<std::thread> chains;
  for (int c = 0; c < num_chains; ++c) {
    chains.emplace_back([&, c] {
      Ray ray = Ray::OnNode(cluster, c % 2);  // drivers live on surviving nodes 0/1
      ObjectRef<int> prev = ray.Call<int>("chain_step", task_ms, 0);
      while (!stop.load()) {
        ObjectRef<int> next = ray.Call<int>("chain_step", task_ms, 0);
        (void)prev;
        auto r = ray.Get(next, 120'000'000);
        if (!r.ok()) {
          break;
        }
        prev = next;
      }
    });
  }

  // Sampler: per-500ms completed-task throughput.
  bench::BenchJson json("task_reconstruction");
  json.Set("task_ms", task_ms).Set("num_chains", num_chains);
  std::printf("%-8s %-14s %-14s %-12s\n", "t (s)", "tasks/s", "re-executed", "live nodes");
  Timer wall;
  uint64_t last_exec = 0;
  bool killed = false, added = false;
  double bucket_s = 0.5;
  while (wall.ElapsedSeconds() < run_seconds) {
    SleepMicros(static_cast<int64_t>(bucket_s * 1e6));
    if (!killed && wall.ElapsedSeconds() >= kill_at) {
      cluster.KillNode(4);
      cluster.KillNode(5);
      killed = true;
    }
    if (!added && wall.ElapsedSeconds() >= add_at) {
      cluster.AddNode();
      cluster.AddNode();
      added = true;
    }
    uint64_t now_exec = g_executions.load();
    size_t live = 0;
    for (size_t i = 0; i < cluster.NumNodes(); ++i) {
      live += cluster.node(i).IsAlive() ? 1 : 0;
    }
    std::printf("%-8.1f %-14.0f %-14llu %-12zu%s%s\n", wall.ElapsedSeconds(),
                static_cast<double>(now_exec - last_exec) / bucket_s,
                static_cast<unsigned long long>(g_reexecutions.load()), live,
                (killed && wall.ElapsedSeconds() < kill_at + bucket_s) ? "  <- 2 nodes killed" : "",
                (added && wall.ElapsedSeconds() < add_at + bucket_s) ? "  <- 2 nodes added" : "");
    json.AddRow("timeline", {{"t_s", wall.ElapsedSeconds()},
                             {"tasks_per_s", static_cast<double>(now_exec - last_exec) / bucket_s},
                             {"reexecuted", static_cast<double>(g_reexecutions.load())},
                             {"live_nodes", static_cast<double>(live)}});
    last_exec = now_exec;
  }
  stop.store(true);
  for (auto& c : chains) {
    c.join();
  }
  std::printf("\ntotal executions: %llu, re-executed (reconstruction): %llu\n",
              static_cast<unsigned long long>(g_executions.load()),
              static_cast<unsigned long long>(g_reexecutions.load()));
  json.Set("total_executions", static_cast<double>(g_executions.load()))
      .Set("reexecuted", static_cast<double>(g_reexecutions.load()));
  json.Write();
  return 0;
}
