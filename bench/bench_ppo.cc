// Fig. 14b: PPO on Ray (heterogeneity-aware: CPU-only rollout tasks + one
// GPU optimizer actor) vs a symmetric MPI implementation (every rank runs
// identical code and therefore needs a GPU instance). Two shapes to
// reproduce: Ray is at least as fast with far fewer GPUs, and the cost gap
// (paper: 4.5x from heterogeneity alone, 18x with spot instances) follows
// from instance-hours.
#include <cstdio>

#include "baselines/mpi.h"
#include "bench/bench_util.h"
#include "raylib/ppo.h"

namespace ray {
namespace {

constexpr double kCpuNodePricePerHour = 1.0;   // m4.16xlarge-style
constexpr double kGpuNodePricePerHour = 4.0;   // p2.16xlarge-style

struct PpoRow {
  double ray_seconds = 0;
  double mpi_seconds = 0;
  int ray_gpu_nodes = 1;
  int mpi_gpu_nodes = 0;
  double ray_cost = 0;
  double mpi_cost = 0;
};

PpoRow Run(int cpus, int steps_per_batch, int iterations) {
  PpoRow row;
  int cpu_nodes = std::max(1, cpus / 2);
  {
    ClusterConfig config;
    config.num_nodes = 1;  // driver
    config.scheduler.total_resources = ResourceSet::Cpu(2);
    config.scheduler.spillover_queue_threshold = 1;
    config.net.control_latency_us = 15;
    Cluster cluster(config);
    for (int i = 0; i < cpu_nodes; ++i) {
      cluster.AddNodeWithResources(ResourceSet::Cpu(cpus / cpu_nodes));
    }
    cluster.AddNodeWithResources(ResourceSet{{"CPU", 2}, {"GPU", 1}});
    raylib::RegisterPpoSupport(cluster);
    Ray ray = Ray::OnNode(cluster, 0);

    raylib::PpoConfig config2;
    config2.env = "humanoid_sim";
    config2.policy_state_dim = 16;
    config2.policy_action_dim = 4;
    config2.iterations = iterations;
    config2.steps_per_batch = steps_per_batch;
    config2.rollout_max_steps = 1000;
    config2.max_in_flight = cpus + 4;
    raylib::Ppo ppo(ray, config2);
    auto report = ppo.Train();
    RAY_CHECK(report.ok()) << report.status().ToString();
    row.ray_seconds = report->wall_seconds;
  }
  {
    SimNetwork net(NetConfig{});
    std::vector<NodeId> ranks;
    for (int i = 0; i < cpus; ++i) {
      ranks.push_back(NodeId::FromRandom());
    }
    baselines::MpiPpoConfig config;
    config.env = "humanoid_sim";
    config.policy_state_dim = 16;
    config.policy_action_dim = 4;
    config.iterations = iterations;
    config.steps_per_batch = steps_per_batch;
    config.rollout_max_steps = 1000;
    config.num_ranks = cpus;
    auto result = baselines::MpiPpo(net, ranks, config);
    row.mpi_seconds = result.wall_seconds;
  }
  // Instance accounting: Ray rents CPU nodes plus one GPU node; symmetric
  // MPI must rent GPU instances for every 8 CPUs (the paper's ratio).
  row.ray_gpu_nodes = 1;
  row.mpi_gpu_nodes = std::max(1, cpus / 8);
  row.ray_cost =
      (cpu_nodes * kCpuNodePricePerHour + kGpuNodePricePerHour) * row.ray_seconds / 3600.0;
  row.mpi_cost = (row.mpi_gpu_nodes + cpu_nodes) * kGpuNodePricePerHour * row.mpi_seconds / 3600.0;
  return row;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 14b", "PPO: Ray heterogeneity-aware vs symmetric MPI",
                "8x1 - 512x64 CPUxGPU -> 8-32 CPUs, 1 Ray GPU; humanoid_sim rollouts");
  int steps = bench::QuickMode() ? 2500 : 8000;
  int iterations = bench::QuickMode() ? 1 : 2;

  bench::BenchJson json("ppo");
  json.Set("steps_per_batch", steps).Set("iterations", iterations);
  std::printf("%-8s %-14s %-14s %-10s %-10s %-12s\n", "CPUs", "MPI PPO (s)", "Ray PPO (s)",
              "MPI GPUs", "Ray GPUs", "cost ratio");
  for (int cpus : {8, 16, 32}) {
    auto row = Run(cpus, steps, iterations);
    std::printf("%-8d %-14.2f %-14.2f %-10d %-10d %-12.2f\n", cpus, row.mpi_seconds,
                row.ray_seconds, row.mpi_gpu_nodes, row.ray_gpu_nodes,
                row.mpi_cost / row.ray_cost);
    json.AddRow("scales", {{"cpus", static_cast<double>(cpus)},
                           {"mpi_s", row.mpi_seconds},
                           {"ray_s", row.ray_seconds},
                           {"mpi_gpus", static_cast<double>(row.mpi_gpu_nodes)},
                           {"ray_gpus", static_cast<double>(row.ray_gpu_nodes)},
                           {"cost_ratio", row.mpi_cost / row.ray_cost}});
  }
  json.Write();
  std::printf("\npaper: Ray PPO outperforms the specialized MPI implementation at every scale\n"
              "while using at most 8 GPUs (never more than 1 per 8 CPUs); heterogeneity-aware\n"
              "scheduling cut costs 4.5x.\n");
  return 0;
}
