// Fig. 14a: Evolution Strategies time-to-solve vs cores. Two systems run the
// same total simulation work:
//   - Ray ES: seeds-only results folded by a tree of aggregation actors
//     (the paper's 7-line hierarchical-aggregation change);
//   - reference-style ES: every result ships its full gradient contribution
//     to the driver, which folds all of them serially — the special-purpose
//     system's driver bottleneck that stopped scaling at 2048 cores.
// The shape to reproduce: Ray keeps speeding up with cores (paper: 1.6x per
// doubling, 3.7 min median at 8192 cores); the reference plateaus.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include <cmath>

#include "common/random.h"
#include "raylib/es.h"

namespace ray {
namespace {

// The reference implementation ships each result as a full-parameter-sized
// payload (the paper's Humanoid-v1 policy is ~350KB); our benchmark policy
// is small, so results are padded to 128KB, and the wire is 100x dilated so
// result bytes (not host copies) set the pace for both systems.
constexpr int kReferenceResultFloats = 32 * 1024;

std::unique_ptr<Cluster> MakeCluster(int cores) {
  ClusterConfig config;
  config.num_nodes = 1;  // driver node
  config.scheduler.total_resources = ResourceSet::Cpu(2);
  // Spill quickly: the driver submits the whole wave at once and the paper's
  // bottom-up scheduler distributes it cluster-wide.
  config.scheduler.spillover_queue_threshold = 1;
  config.net.control_latency_us = 15;
  config.net.latency_us = 100;
  config.net.link_bandwidth_bytes_s = 31.25e6;
  config.net.per_stream_bandwidth_bytes_s = 13e6;
  auto cluster = std::make_unique<Cluster>(config);
  int nodes = std::max(1, cores / 2);
  for (int i = 0; i < nodes; ++i) {
    cluster->AddNodeWithResources(ResourceSet::Cpu(cores / nodes));
  }
  raylib::RegisterEsSupport(*cluster);
  return cluster;
}

raylib::EsConfig BenchEsConfig(int evals, int iterations) {
  raylib::EsConfig config;
  config.env = "humanoid_sim";
  config.policy_state_dim = 16;
  config.policy_action_dim = 4;
  config.iterations = iterations;
  config.evaluations_per_iteration = evals;
  config.rollout_max_steps = 60;
  return config;
}

double RunRayEs(int cores, int evals, int iterations) {
  auto cluster = MakeCluster(cores);
  Ray ray = Ray::OnNode(*cluster, 0);
  SleepMicros(30'000);
  raylib::EsConfig config = BenchEsConfig(evals, iterations);
  config.tree_aggregation = true;
  config.num_aggregators = std::max(2, cores / 4);
  raylib::EvolutionStrategies es(ray, config);
  auto report = es.Train();
  RAY_CHECK(report.ok()) << report.status().ToString();
  return report->wall_seconds;
}

// Reference-style: full-gradient results, serial driver fold.
double RunReferenceEs(int cores, int evals, int iterations) {
  auto cluster = MakeCluster(cores);
  Ray ray = Ray::OnNode(*cluster, 0);
  SleepMicros(30'000);
  raylib::EsConfig config = BenchEsConfig(evals, iterations);
  size_t dim = static_cast<size_t>(config.policy_action_dim) * config.policy_state_dim +
               config.policy_action_dim;
  Rng rng(11);
  std::vector<float> policy = rng.NormalVector(dim, 0.0, 0.05);

  Timer timer;
  uint64_t seed = 1;
  for (int it = 0; it < iterations; ++it) {
    auto policy_ref = ray.Put(policy);
    std::vector<ObjectRef<std::vector<float>>> results;
    for (int e = 0; e < evals; ++e) {
      results.push_back(ray.Call<std::vector<float>>("es_evaluate_full", policy_ref, seed,
                                                     config.sigma, config.env,
                                                     config.rollout_max_steps,
                                                     kReferenceResultFloats));
      seed += 2;
    }
    // The driver ingests and folds every full gradient itself.
    std::vector<float> grad(dim, 0.0f);
    for (auto& ref : results) {
      auto g = ray.Get(ref, 300'000'000);
      RAY_CHECK(g.ok()) << g.status().ToString();
      for (size_t i = 0; i < dim; ++i) {
        grad[i] += (*g)[i];  // the padding tail is zeros
      }
    }
    double norm = 1e-8;
    for (float g : grad) {
      norm += static_cast<double>(g) * g;
    }
    norm = std::sqrt(norm);
    for (size_t i = 0; i < dim; ++i) {
      policy[i] += config.lr * grad[i] / static_cast<float>(norm);
    }
  }
  return timer.ElapsedSeconds();
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 14a", "ES time-to-solve vs cores: Ray (aggregation tree) vs reference",
                "256-8192 cores / 10000 evals -> 2-16 cores / 150 evals; fixed training work");
  int evals = bench::QuickMode() ? 60 : 150;
  int iterations = bench::QuickMode() ? 1 : 2;

  std::printf("%-8s %-18s %-18s %-22s\n", "cores", "Ray ES (s)", "reference ES (s)",
              "Ray speedup vs 2-core");
  bench::BenchJson json("es");
  json.Set("evaluations", evals).Set("iterations", iterations);
  double ray_base = 0;
  for (int cores : {2, 4, 8, 16}) {
    double ray_s = RunRayEs(cores, evals, iterations);
    double ref_s = RunReferenceEs(cores, evals, iterations);
    if (cores == 2) {
      ray_base = ray_s;
    }
    std::printf("%-8d %-18.2f %-18.2f %-22.2f\n", cores, ray_s, ref_s, ray_base / ray_s);
    json.AddRow("cores", {{"cores", static_cast<double>(cores)},
                          {"ray_s", ray_s},
                          {"reference_s", ref_s},
                          {"ray_speedup_vs_2core", ray_base / ray_s}});
  }
  json.Write();
  std::printf("\npaper: Ray speeds up ~1.6x per core doubling to 8192 cores; the reference\n"
              "system's driver saturates and it fails to complete beyond 1024 cores — here the\n"
              "reference's serial full-gradient fold keeps it from matching Ray's scaling.\n");
  return 0;
}
