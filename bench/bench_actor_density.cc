// Actor density: how many resident actors one node can host, and what that
// residency costs callers. The fiber runtime is the whole story — each actor
// is a parked fiber (a few KB of stack) on the local scheduler's carrier
// threads, not an OS thread, so a single node holds 100k+ actors where the
// thread-per-actor design ran out of pid/VM budget around a few thousand.
//
// Ladder: 1k / 10k / 100k actors on one node. Each rung creates the actors,
// waits until all are resident (parked on their mailboxes), then measures
// round-trip method-call latency against a sample of them. The full run
// asserts the density claim: p99 at 100k actors stays under 10x the p99 at
// 1k — residency is cheap because idle actors consume no carrier time.
//
// --smoke (tier-1 gate): one 10k rung; asserts >= 10k resident actors and
// nonzero fiber parks (i.e. actors really are parked fibers, not threads).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "runtime/api.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace ray {
namespace {

class DensityActor {
 public:
  int Ping(int x) { return x + calls_++; }

 private:
  int calls_ = 0;
};

// Current resident set in MB (Linux /proc/self/statm; 0 elsewhere).
double ResidentMb() {
#if defined(__linux__)
  if (FILE* f = std::fopen("/proc/self/statm", "r")) {
    long total = 0;
    long resident = 0;
    int n = std::fscanf(f, "%ld %ld", &total, &resident);
    std::fclose(f);
    if (n == 2) {
      return static_cast<double>(resident) *
             static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
    }
  }
#endif
  return 0.0;
}

struct RungResult {
  int actors = 0;
  size_t resident_actors = 0;
  double create_seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t fiber_parks = 0;
  uint64_t fiber_switches = 0;
  size_t resident_fibers = 0;
  double rss_mb = 0;
  bool ok = false;
};

RungResult Run(int num_actors, int sample_calls) {
  RungResult result;
  result.actors = num_actors;

  const int kWorkers = 8;
  ClusterConfig config;
  config.num_nodes = 1;
  // Every actor holds CPU:1 for life (creation demand); budget for all of
  // them plus the worker pool, or placement would refuse the ladder.
  config.scheduler.total_resources = ResourceSet::Cpu(num_actors + kWorkers);
  // Huge CPU count must not translate into a worker per CPU.
  config.scheduler.num_workers = kWorkers;
  // The creation burst queues up locally; never spill it to the global
  // scheduler (there is only this node anyway).
  config.scheduler.spillover_queue_threshold = 10'000'000;
  config.net.control_latency_us = 5;
  Cluster cluster(config);
  cluster.RegisterActorClass<DensityActor>("DensityActor");
  cluster.RegisterActorMethod("DensityActor", "Ping", &DensityActor::Ping);

  Ray ray = Ray::OnNode(cluster, 0);
  Node& node = cluster.node(0);

  Timer create_timer;
  std::vector<ActorHandle> actors;
  actors.reserve(num_actors);
  for (int i = 0; i < num_actors; ++i) {
    actors.push_back(ray.CreateActor("DensityActor", ResourceSet::Cpu(1)));
  }
  // Resident = the actor's fiber exists and is parked on its mailbox. Poll
  // NumLiveActors rather than Get-ing creation signals: the point is the
  // node-side census, and one poll loop beats 100k driver-side Gets.
  const int64_t deadline = NowMicros() + 600'000'000;
  while (node.NumLiveActors() < static_cast<size_t>(num_actors) &&
         NowMicros() < deadline) {
    SleepMicros(10'000);
  }
  result.create_seconds = create_timer.ElapsedSeconds();
  result.resident_actors = node.NumLiveActors();
  if (result.resident_actors < static_cast<size_t>(num_actors)) {
    std::fprintf(stderr, "rung %d: only %zu actors became resident\n", num_actors,
                 result.resident_actors);
    return result;
  }

  // Round-trip latency against a spread of actors while everything else
  // stays parked. Stride through the fleet so the sample touches cold
  // actors, not one hot mailbox.
  std::vector<double> latencies_us;
  latencies_us.reserve(sample_calls);
  const size_t stride = actors.size() > 1 ? actors.size() / 97 + 1 : 1;
  size_t idx = 0;
  for (int i = 0; i < sample_calls; ++i) {
    Timer call;
    auto ref = actors[idx].Call<int>("Ping", 1);
    auto reply = ray.Get(ref, 60'000'000);
    if (!reply.ok()) {
      std::fprintf(stderr, "rung %d: Ping failed: %s\n", num_actors,
                   reply.status().ToString().c_str());
      return result;
    }
    latencies_us.push_back(static_cast<double>(call.ElapsedMicros()));
    idx = (idx + stride) % actors.size();
  }
  result.p50_us = bench::Percentile(latencies_us, 0.50);
  result.p99_us = bench::Percentile(latencies_us, 0.99);

  auto& fibers = node.scheduler().fibers();
  result.fiber_parks = fibers.NumParks();
  result.fiber_switches = fibers.NumSwitches();
  result.resident_fibers = fibers.NumResident();
  result.rss_mb = ResidentMb();
  result.ok = true;
  return result;
}

}  // namespace
}  // namespace ray

int main(int argc, char** argv) {
  using namespace ray;
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::Banner("Actor density", "resident actors per node on the fiber runtime",
                smoke ? "smoke: one 10k rung" : "ladder: 1k / 10k / 100k actors, one node");

  std::vector<int> rungs;
  if (smoke || bench::QuickMode()) {
    rungs = {10'000};
  } else {
    rungs = {1'000, 10'000, 100'000};
  }
  const int sample_calls = smoke || bench::QuickMode() ? 500 : 2'000;

  bench::BenchJson json("actor_density");
  json.Set("smoke", smoke ? 1.0 : 0.0).Set("sample_calls", sample_calls);
  std::printf("%-10s %-10s %-10s %-10s %-10s %-12s %-12s %-8s\n", "actors", "resident",
              "create(s)", "p50(us)", "p99(us)", "parks", "switches", "rss(MB)");

  double max_resident = 0;
  std::vector<RungResult> results;
  for (int n : rungs) {
    auto r = Run(n, sample_calls);
    if (!r.ok) {
      return 1;
    }
    results.push_back(r);
    max_resident = std::max(max_resident, static_cast<double>(r.resident_actors));
    json.AddRow("rungs", {{"actors", static_cast<double>(r.actors)},
                          {"resident_actors", static_cast<double>(r.resident_actors)},
                          {"create_s", r.create_seconds},
                          {"p50_us", r.p50_us},
                          {"p99_us", r.p99_us},
                          {"fiber_parks", static_cast<double>(r.fiber_parks)},
                          {"fiber_switches", static_cast<double>(r.fiber_switches)},
                          {"resident_fibers", static_cast<double>(r.resident_fibers)},
                          {"rss_mb", r.rss_mb}});
    std::printf("%-10d %-10zu %-10.2f %-10.1f %-10.1f %-12llu %-12llu %-8.0f\n", r.actors,
                r.resident_actors, r.create_seconds, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.fiber_parks),
                static_cast<unsigned long long>(r.fiber_switches), r.rss_mb);
  }
  json.Set("max_resident_actors", max_resident);
  json.Write();

  if (smoke) {
    const auto& r = results.back();
    if (r.resident_actors < 10'000) {
      std::fprintf(stderr, "smoke FAIL: %zu resident actors < 10000\n", r.resident_actors);
      return 1;
    }
    if (r.fiber_parks == 0) {
      std::fprintf(stderr, "smoke FAIL: zero fiber parks — actors are not parked fibers\n");
      return 1;
    }
    std::printf("smoke OK: %zu resident actors, %llu fiber parks\n", r.resident_actors,
                static_cast<unsigned long long>(r.fiber_parks));
    return 0;
  }

  // The density claim: hosting 100x more actors must not blow up call
  // latency — idle actors are parked fibers that cost the dispatch path
  // nothing. Allow 10x on p99 for the bigger mailbox/census structures.
  const auto& small = results.front();
  const auto& big = results.back();
  if (big.p99_us >= 10.0 * std::max(small.p99_us, 1.0)) {
    std::fprintf(stderr, "FAIL: p99 at %d actors (%.1fus) >= 10x p99 at %d (%.1fus)\n",
                 big.actors, big.p99_us, small.actors, small.p99_us);
    return 1;
  }
  std::printf("\nexpectation: p99 grows far less than linearly with residency "
              "(measured %.1fus @ %d vs %.1fus @ %d actors).\n",
              small.p99_us, small.actors, big.p99_us, big.actors);
  return 0;
}
