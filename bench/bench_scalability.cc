// Fig. 8b: end-to-end scalability. The paper drives an embarrassingly
// parallel load of empty tasks and observes near-linear throughput growth to
// 1.8M tasks/s at 100 nodes, enabled by the sharded GCS and bottom-up
// scheduling. On this machine (see banner) we use the paper's own sizing
// argument — 5ms single-core tasks (Section 2 footnote), scaled to 2ms — so
// per-task control-plane cost (lineage writes, scheduling, location
// publishes) is visible rather than amortized away by execution time. Two
// ablations from DESIGN.md follow: forcing every submission through the
// global scheduler (bottom-up off), and GCS shard count. Results land in
// BENCH_scalability.json (throughput, submit-latency percentiles, config).
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/sync.h"
#include "runtime/api.h"

namespace ray {
namespace {

constexpr int kTaskMs = 2;

int SleepTask(int ms) {
  SleepMicros(static_cast<int64_t>(ms) * 1000);
  return ms;
}

struct RunResult {
  double tasks_per_s = 0;
  // Driver-side ray.Call latency (task submission path), microseconds.
  double submit_p50_us = 0;
  double submit_p95_us = 0;
  double submit_p99_us = 0;
};

RunResult RunThroughput(int num_nodes, int tasks_per_node, int task_ms, bool always_forward,
                        int gcs_shards) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.num_workers = 4;
  config.scheduler.spillover_queue_threshold = 1u << 20;  // keep tasks local
  config.scheduler.always_forward_to_global = always_forward;
  config.gcs.num_shards = gcs_shards;
  config.num_global_schedulers = 2;
  config.net.control_latency_us = 20;
  Cluster cluster(config);
  cluster.RegisterFunction("sleep_task", &SleepTask);
  SleepMicros(30'000);  // first heartbeats

  // One driver per node submits its share bottom-up (the paper's drivers
  // run on every node; nested submission achieves the same distribution).
  Mutex lat_mu{"bench_scalability.lat_mu"};
  std::vector<double> submit_lat_us;
  submit_lat_us.reserve(static_cast<size_t>(num_nodes) * tasks_per_node);
  Timer timer;
  std::vector<std::thread> drivers;
  for (int n = 0; n < num_nodes; ++n) {
    drivers.emplace_back([&, n] {
      Ray ray = Ray::OnNode(cluster, n);
      std::vector<ObjectRef<int>> refs;
      std::vector<double> lat;
      refs.reserve(tasks_per_node);
      lat.reserve(tasks_per_node);
      for (int t = 0; t < tasks_per_node; ++t) {
        Timer call_timer;
        refs.push_back(ray.Call<int>("sleep_task", task_ms));
        lat.push_back(static_cast<double>(call_timer.ElapsedMicros()));
      }
      for (auto& ref : refs) {
        auto r = ray.Get(ref, 300'000'000);
        RAY_CHECK(r.ok()) << r.status().ToString();
      }
      MutexLock lock(lat_mu);
      submit_lat_us.insert(submit_lat_us.end(), lat.begin(), lat.end());
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  double seconds = timer.ElapsedSeconds();
  RunResult result;
  result.tasks_per_s = static_cast<double>(num_nodes) * tasks_per_node / seconds;
  result.submit_p50_us = bench::Percentile(submit_lat_us, 0.50);
  result.submit_p95_us = bench::Percentile(submit_lat_us, 0.95);
  result.submit_p99_us = bench::Percentile(submit_lat_us, 0.99);
  return result;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 8b", "task throughput vs cluster size (+ scheduling/GCS ablations)",
                "nodes 10-100 -> 1-16; 4 workers/node; 2ms tasks (paper's 5ms-task sizing argument, scaled)");
  int per_node = bench::QuickMode() ? 100 : 300;
  bench::BenchJson json("scalability");
  json.Set("task_ms", kTaskMs)
      .Set("tasks_per_node", per_node)
      .Set("workers_per_node", 4)
      .Set("gcs_shards", 4)
      .Set("control_latency_us", 20);

  std::printf("-- throughput scaling (bottom-up scheduling, 4 GCS shards) --\n");
  std::printf("%-8s %-14s %-10s %-12s %-12s\n", "nodes", "tasks/s", "speedup", "submit p50us",
              "submit p99us");
  double base = 0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    RunResult r = RunThroughput(nodes, per_node, kTaskMs, false, 4);
    if (nodes == 1) {
      base = r.tasks_per_s;
    }
    std::printf("%-8d %-14.0f %-10.2f %-12.0f %-12.0f\n", nodes, r.tasks_per_s,
                r.tasks_per_s / base, r.submit_p50_us, r.submit_p99_us);
    json.AddRow("scaling", {{"nodes", static_cast<double>(nodes)},
                            {"tasks_per_s", r.tasks_per_s},
                            {"speedup", r.tasks_per_s / base},
                            {"submit_p50_us", r.submit_p50_us},
                            {"submit_p95_us", r.submit_p95_us},
                            {"submit_p99_us", r.submit_p99_us}});
  }

  // Short tasks make per-task scheduling overhead visible (with long tasks
  // the extra global hop amortizes away).
  std::printf("\n-- ablation: bottom-up vs always-global scheduling (8 nodes, 5ms tasks) --\n");
  RunResult bottom_up = RunThroughput(8, per_node, 5, false, 4);
  RunResult global_only = RunThroughput(8, per_node, 5, true, 4);
  std::printf("bottom-up: %.0f tasks/s   always-global: %.0f tasks/s   (bottom-up %.2fx)\n",
              bottom_up.tasks_per_s, global_only.tasks_per_s,
              bottom_up.tasks_per_s / global_only.tasks_per_s);
  json.Set("ablation_bottom_up_tasks_per_s", bottom_up.tasks_per_s);
  json.Set("ablation_always_global_tasks_per_s", global_only.tasks_per_s);

  std::printf("\n-- ablation: GCS shard count (8 nodes) --\n");
  for (int shards : {1, 2, 8}) {
    RunResult r = RunThroughput(8, per_node, kTaskMs, false, shards);
    std::printf("shards=%d: %.0f tasks/s\n", shards, r.tasks_per_s);
    json.AddRow("shard_ablation",
                {{"shards", static_cast<double>(shards)}, {"tasks_per_s", r.tasks_per_s}});
  }
  json.Write();
  return 0;
}
