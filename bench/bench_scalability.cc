// Fig. 8b: end-to-end scalability. The paper drives an embarrassingly
// parallel load of empty tasks and observes near-linear throughput growth to
// 1.8M tasks/s at 100 nodes, enabled by the sharded GCS and bottom-up
// scheduling. On this machine (see banner) we use the paper's own sizing
// argument — 5ms single-core tasks (Section 2 footnote), scaled to 2ms — so
// logical concurrency is not bounded by physical cores, and we sweep node
// count. Two ablations from DESIGN.md follow: forcing every submission
// through the global scheduler (bottom-up off), and GCS shard count.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "runtime/api.h"

namespace ray {
namespace {

int SleepTask(int ms) {
  SleepMicros(static_cast<int64_t>(ms) * 1000);
  return ms;
}

double RunThroughput(int num_nodes, int tasks_per_node, int task_ms, bool always_forward,
                     int gcs_shards) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.num_workers = 4;
  config.scheduler.spillover_queue_threshold = 1u << 20;  // keep tasks local
  config.scheduler.always_forward_to_global = always_forward;
  config.gcs.num_shards = gcs_shards;
  config.num_global_schedulers = 2;
  config.net.control_latency_us = 20;
  Cluster cluster(config);
  cluster.RegisterFunction("sleep_task", &SleepTask);
  SleepMicros(30'000);  // first heartbeats

  // One driver per node submits its share bottom-up (the paper's drivers
  // run on every node; nested submission achieves the same distribution).
  Timer timer;
  std::vector<std::thread> drivers;
  for (int n = 0; n < num_nodes; ++n) {
    drivers.emplace_back([&, n] {
      Ray ray = Ray::OnNode(cluster, n);
      std::vector<ObjectRef<int>> refs;
      refs.reserve(tasks_per_node);
      for (int t = 0; t < tasks_per_node; ++t) {
        refs.push_back(ray.Call<int>("sleep_task", task_ms));
      }
      for (auto& ref : refs) {
        auto r = ray.Get(ref, 300'000'000);
        RAY_CHECK(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(num_nodes) * tasks_per_node / seconds;
}

}  // namespace
}  // namespace ray

int main() {
  using namespace ray;
  bench::Banner("Figure 8b", "task throughput vs cluster size (+ scheduling/GCS ablations)",
                "nodes 10-100 -> 1-16; 4 workers/node; 20ms tasks (paper's 5ms-task sizing argument, scaled)");
  int per_node = bench::QuickMode() ? 60 : 150;

  std::printf("-- throughput scaling (bottom-up scheduling, 4 GCS shards) --\n");
  std::printf("%-8s %-14s %-12s\n", "nodes", "tasks/s", "speedup");
  double base = 0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    double tput = RunThroughput(nodes, per_node, 20, false, 4);
    if (nodes == 1) {
      base = tput;
    }
    std::printf("%-8d %-14.0f %-12.2f\n", nodes, tput, tput / base);
  }

  // Short tasks make per-task scheduling overhead visible (with 20ms tasks
  // the extra global hop amortizes away).
  std::printf("\n-- ablation: bottom-up vs always-global scheduling (8 nodes, 5ms tasks) --\n");
  double bottom_up = RunThroughput(8, per_node, 5, false, 4);
  double global_only = RunThroughput(8, per_node, 5, true, 4);
  std::printf("bottom-up: %.0f tasks/s   always-global: %.0f tasks/s   (bottom-up %.2fx)\n",
              bottom_up, global_only, bottom_up / global_only);

  std::printf("\n-- ablation: GCS shard count (8 nodes) --\n");
  for (int shards : {1, 2, 8}) {
    double tput = RunThroughput(8, per_node, 20, false, shards);
    std::printf("shards=%d: %.0f tasks/s\n", shards, tput);
  }
  return 0;
}
