// Fig. 8b: end-to-end scalability. The paper drives an embarrassingly
// parallel load of empty tasks and observes near-linear throughput growth to
// 1.8M tasks/s at 100 nodes, enabled by the sharded GCS and bottom-up
// scheduling. On this machine (see banner) we use the paper's own sizing
// argument — 5ms single-core tasks (Section 2 footnote), scaled to 2ms — so
// per-task control-plane cost (lineage writes, scheduling, location
// publishes) is visible rather than amortized away by execution time. Two
// ablations from DESIGN.md follow: forcing every submission through the
// global scheduler (bottom-up off), and GCS shard count. Results land in
// BENCH_scalability.json (throughput, submit-latency percentiles, config).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/sync.h"
#include "runtime/api.h"

namespace ray {
namespace {

constexpr int kTaskMs = 2;

int SleepTask(int ms) {
  SleepMicros(static_cast<int64_t>(ms) * 1000);
  return ms;
}

struct RunResult {
  double tasks_per_s = 0;
  // Injection rate: tasks submitted / time until the last driver finished its
  // submit loop. With leasing this decouples from completion throughput —
  // submission no longer waits on the scheduler or the GCS.
  double submit_tasks_per_s = 0;
  // Driver-side ray.Call latency (task submission path), microseconds.
  double submit_p50_us = 0;
  double submit_p95_us = 0;
  double submit_p99_us = 0;
  // Direct-transport accounting (0 when leasing is disabled).
  uint64_t direct_submits = 0;
  uint64_t lease_fallbacks = 0;
  uint64_t leases_granted = 0;
  uint64_t leases_revoked = 0;
  uint64_t leases_revoked_busy = 0;
};

RunResult RunThroughput(int num_nodes, int tasks_per_node, int task_ms, bool always_forward,
                        int gcs_shards, bool enable_leasing = true) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.scheduler.total_resources = ResourceSet::Cpu(4);
  config.scheduler.num_workers = 4;
  config.scheduler.spillover_queue_threshold = 1u << 20;  // keep tasks local
  config.scheduler.always_forward_to_global = always_forward;
  config.scheduler.enable_leasing = enable_leasing;
  config.gcs.num_shards = gcs_shards;
  config.num_global_schedulers = 2;
  config.net.control_latency_us = 20;
  // Throughput runs oversubscribe small CI hosts; a saturated core can starve
  // heartbeat threads past the default window and mass false deaths wreck the
  // measurement. Detection latency is bench_failure_recovery's job, not ours.
  config.monitor.miss_threshold = 50;
  Cluster cluster(config);
  cluster.RegisterFunction("sleep_task", &SleepTask);
  SleepMicros(30'000);  // first heartbeats

  // One driver per node submits its share bottom-up (the paper's drivers
  // run on every node; nested submission achieves the same distribution).
  Mutex lat_mu{"bench_scalability.lat_mu"};
  std::vector<double> submit_lat_us;
  submit_lat_us.reserve(static_cast<size_t>(num_nodes) * tasks_per_node);
  std::atomic<int64_t> last_submit_done_us{0};
  Timer timer;
  int64_t start_us = NowMicros();
  std::vector<std::thread> drivers;
  for (int n = 0; n < num_nodes; ++n) {
    drivers.emplace_back([&, n] {
      Ray ray = Ray::OnNode(cluster, n);
      std::vector<ObjectRef<int>> refs;
      std::vector<double> lat;
      refs.reserve(tasks_per_node);
      lat.reserve(tasks_per_node);
      for (int t = 0; t < tasks_per_node; ++t) {
        Timer call_timer;
        refs.push_back(ray.Call<int>("sleep_task", task_ms));
        lat.push_back(static_cast<double>(call_timer.ElapsedMicros()));
      }
      int64_t done_us = NowMicros();
      int64_t prev = last_submit_done_us.load(std::memory_order_relaxed);
      while (prev < done_us &&
             !last_submit_done_us.compare_exchange_weak(prev, done_us, std::memory_order_relaxed)) {
      }
      for (auto& ref : refs) {
        auto r = ray.Get(ref, 300'000'000);
        RAY_CHECK(r.ok()) << r.status().ToString();
      }
      MutexLock lock(lat_mu);
      submit_lat_us.insert(submit_lat_us.end(), lat.begin(), lat.end());
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  double seconds = timer.ElapsedSeconds();
  RunResult result;
  result.tasks_per_s = static_cast<double>(num_nodes) * tasks_per_node / seconds;
  double submit_seconds =
      static_cast<double>(last_submit_done_us.load(std::memory_order_relaxed) - start_us) / 1e6;
  result.submit_tasks_per_s =
      submit_seconds > 0 ? static_cast<double>(num_nodes) * tasks_per_node / submit_seconds : 0;
  result.submit_p50_us = bench::Percentile(submit_lat_us, 0.50);
  result.submit_p95_us = bench::Percentile(submit_lat_us, 0.95);
  result.submit_p99_us = bench::Percentile(submit_lat_us, 0.99);
  for (int n = 0; n < num_nodes; ++n) {
    result.direct_submits += cluster.node(n).transport().NumDirectSubmits();
    result.lease_fallbacks += cluster.node(n).transport().NumFallbacks();
    result.leases_granted += cluster.node(n).scheduler().NumLeasesGranted();
    result.leases_revoked += cluster.node(n).scheduler().NumLeasesRevoked();
    result.leases_revoked_busy += cluster.node(n).scheduler().NumBusyLeasesRevoked();
  }
  return result;
}

// Leased-vs-routed ablation on empty tasks: with task_ms=0 the submit path
// IS the workload, so this isolates what direct task transport buys over
// per-task scheduler routing + synchronous lineage writes.
void AddSmallTaskRow(bench::BenchJson& json, const char* row, int nodes, const RunResult& r) {
  json.AddRow(row, {{"nodes", static_cast<double>(nodes)},
                    {"tasks_per_s", r.tasks_per_s},
                    {"submit_tasks_per_s", r.submit_tasks_per_s},
                    {"submit_p50_us", r.submit_p50_us},
                    {"submit_p95_us", r.submit_p95_us},
                    {"submit_p99_us", r.submit_p99_us},
                    {"direct_submits", static_cast<double>(r.direct_submits)},
                    {"lease_fallbacks", static_cast<double>(r.lease_fallbacks)},
                    {"leases_granted", static_cast<double>(r.leases_granted)},
                    {"leases_revoked", static_cast<double>(r.leases_revoked)},
                    {"leases_revoked_busy", static_cast<double>(r.leases_revoked_busy)}});
}

void RunSmallTaskAblation(bench::BenchJson& json, int per_node, const std::vector<int>& node_counts) {
  std::printf("\n-- small-task ablation (task_ms=0): leased (direct transport) vs routed --\n");
  std::printf("(submit t/s = injection rate; done t/s = end-to-end completions, bounded on this\n");
  std::printf(" host by the simulator's chain-replication CPU, which both variants share)\n");
  std::printf("%-6s %-15s %-15s %-9s %-12s %-12s %-11s %-8s\n", "nodes", "submit t/s (L)",
              "submit t/s (R)", "submit x", "done t/s(L)", "done t/s(R)", "p50us(L/R)", "direct%");
  for (int nodes : node_counts) {
    RunResult leased = RunThroughput(nodes, per_node, 0, false, 4, true);
    RunResult routed = RunThroughput(nodes, per_node, 0, false, 4, false);
    double total_tasks = static_cast<double>(nodes) * per_node;
    double direct_frac = leased.direct_submits / total_tasks;
    char p50[32];
    std::snprintf(p50, sizeof(p50), "%.0f/%.0f", leased.submit_p50_us, routed.submit_p50_us);
    std::printf("%-6d %-15.0f %-15.0f %-9.1f %-12.0f %-12.0f %-11s %-8.1f\n", nodes,
                leased.submit_tasks_per_s, routed.submit_tasks_per_s,
                leased.submit_tasks_per_s / routed.submit_tasks_per_s, leased.tasks_per_s,
                routed.tasks_per_s, p50, 100.0 * direct_frac);
    AddSmallTaskRow(json, "smalltask_leased", nodes, leased);
    AddSmallTaskRow(json, "smalltask_routed", nodes, routed);
  }
}

}  // namespace
}  // namespace ray

int main(int argc, char** argv) {
  using namespace ray;
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  bench::Banner("Figure 8b", "task throughput vs cluster size (+ scheduling/GCS ablations)",
                "nodes 10-100 -> 1-16; 4 workers/node; 2ms tasks (paper's 5ms-task sizing argument, scaled)");
  int per_node = bench::QuickMode() || smoke ? 100 : 300;
  bench::BenchJson json("scalability");
  json.Set("version", 2)
      .Set("note",
           "v2 adds the small-task (task_ms=0) leased-vs-routed ablation: 'leased' = direct "
           "task transport (worker leases + async lineage), 'routed' = per-task scheduler path "
           "(enable_leasing=false). On a single-core host end-to-end completions are bounded by "
           "the simulator's chain-replication CPU, shared by both variants; the submit-path win "
           "shows in submit_p50_us (per-call cost) and per-driver capability 1e6/submit_p50_us.")
      .Set("task_ms", kTaskMs)
      .Set("tasks_per_node", per_node)
      .Set("workers_per_node", 4)
      .Set("gcs_shards", 4)
      .Set("control_latency_us", 20);

  if (smoke) {
    // CI variant: one leased-vs-routed pair on a small cluster, asserting the
    // direct path actually carried the leased run.
    RunResult leased = RunThroughput(2, per_node, 0, false, 4, true);
    RunResult routed = RunThroughput(2, per_node, 0, false, 4, false);
    std::printf("smoke: leased %.0f submit/s, %.0f done/s (p50 %.1fus, %llu direct / %llu "
                "fallback)  routed %.0f submit/s, %.0f done/s (p50 %.1fus)\n",
                leased.submit_tasks_per_s, leased.tasks_per_s, leased.submit_p50_us,
                static_cast<unsigned long long>(leased.direct_submits),
                static_cast<unsigned long long>(leased.lease_fallbacks), routed.submit_tasks_per_s,
                routed.tasks_per_s, routed.submit_p50_us);
    AddSmallTaskRow(json, "smalltask_leased", 2, leased);
    AddSmallTaskRow(json, "smalltask_routed", 2, routed);
    json.Write();
    if (leased.direct_submits == 0) {
      std::fprintf(stderr, "smoke FAIL: leased run made zero direct submits\n");
      return 1;
    }
    if (routed.direct_submits != 0) {
      std::fprintf(stderr, "smoke FAIL: routed run used the direct path\n");
      return 1;
    }
    // Lease-churn sanity: the leased run must have granted leases, and the
    // idle-first pressure revoker must not have shredded them — a steady
    // small-task run on an uncontended cluster should revoke at most a
    // handful (idle-timeout reaping at the tail), never a multiple of the
    // grants.
    if (leased.leases_granted == 0) {
      std::fprintf(stderr, "smoke FAIL: leased run granted zero leases\n");
      return 1;
    }
    if (leased.leases_revoked > leased.leases_granted) {
      std::fprintf(stderr,
                   "smoke FAIL: leases revoked (%llu) exceed granted (%llu) - revocation churn\n",
                   static_cast<unsigned long long>(leased.leases_revoked),
                   static_cast<unsigned long long>(leased.leases_granted));
      return 1;
    }
    // Pressure-revocation hysteresis: a steady leased run never starves the
    // ready queue long enough to cross the dwell window, so the busy-lease
    // escalation must not fire at all. Any nonzero count here means transient
    // ready-queue blips are tearing down hot pipelines again.
    if (leased.leases_revoked_busy != 0) {
      std::fprintf(stderr,
                   "smoke FAIL: %llu busy leases revoked under steady load - dwell gate broken\n",
                   static_cast<unsigned long long>(leased.leases_revoked_busy));
      return 1;
    }
    return 0;
  }

  std::printf("-- throughput scaling (bottom-up scheduling, 4 GCS shards) --\n");
  std::printf("%-8s %-14s %-10s %-12s %-12s\n", "nodes", "tasks/s", "speedup", "submit p50us",
              "submit p99us");
  double base = 0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    RunResult r = RunThroughput(nodes, per_node, kTaskMs, false, 4);
    if (nodes == 1) {
      base = r.tasks_per_s;
    }
    std::printf("%-8d %-14.0f %-10.2f %-12.0f %-12.0f\n", nodes, r.tasks_per_s,
                r.tasks_per_s / base, r.submit_p50_us, r.submit_p99_us);
    json.AddRow("scaling", {{"nodes", static_cast<double>(nodes)},
                            {"tasks_per_s", r.tasks_per_s},
                            {"speedup", r.tasks_per_s / base},
                            {"submit_p50_us", r.submit_p50_us},
                            {"submit_p95_us", r.submit_p95_us},
                            {"submit_p99_us", r.submit_p99_us}});
  }

  // Short tasks make per-task scheduling overhead visible (with long tasks
  // the extra global hop amortizes away).
  std::printf("\n-- ablation: bottom-up vs always-global scheduling (8 nodes, 5ms tasks) --\n");
  RunResult bottom_up = RunThroughput(8, per_node, 5, false, 4);
  RunResult global_only = RunThroughput(8, per_node, 5, true, 4);
  std::printf("bottom-up: %.0f tasks/s   always-global: %.0f tasks/s   (bottom-up %.2fx)\n",
              bottom_up.tasks_per_s, global_only.tasks_per_s,
              bottom_up.tasks_per_s / global_only.tasks_per_s);
  json.Set("ablation_bottom_up_tasks_per_s", bottom_up.tasks_per_s);
  json.Set("ablation_always_global_tasks_per_s", global_only.tasks_per_s);

  std::printf("\n-- ablation: GCS shard count (8 nodes) --\n");
  for (int shards : {1, 2, 8}) {
    RunResult r = RunThroughput(8, per_node, kTaskMs, false, shards);
    std::printf("shards=%d: %.0f tasks/s\n", shards, r.tasks_per_s);
    json.AddRow("shard_ablation",
                {{"shards", static_cast<double>(shards)}, {"tasks_per_s", r.tasks_per_s}});
  }

  // Empty tasks expose the submit path itself; more per node so each point
  // runs long enough to measure (an empty task costs ~no execution time).
  int per_small = bench::QuickMode() ? 500 : 2000;
  json.Set("smalltask_tasks_per_node", per_small);
  RunSmallTaskAblation(json, per_small, {1, 2, 4, 8, 16});
  json.Write();
  return 0;
}
