// Fig. 10a: GCS chain-replication fault tolerance. A client writes 25-byte
// keys / 512-byte values and reads them back as fast as it can (one request
// in flight). Partway through, one chain member is killed; the master
// detects the failure, removes the member, splices in a replacement, and
// state-transfers to it. The paper's claim: maximum client-observed latency
// stays under 30ms through the reconfiguration.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/logging.h"
#include "gcs/chain.h"

int main() {
  using namespace ray;
  bench::Banner("Figure 10a", "GCS read/write latency through chain reconfiguration",
                "10s run -> 4s; kill a chain member at t=1.5s");

  gcs::ChainConfig config;
  config.num_replicas = 2;
  config.hop_latency_us = 25;
  config.failure_detection_us = 8000;
  gcs::ChainShard chain(config);

  double run_seconds = bench::QuickMode() ? 1.5 : 4.0;
  double kill_at = run_seconds * 0.4;
  const std::string value(512, 'v');

  struct Bucket {
    double max_write_us = 0;
    double max_read_us = 0;
    uint64_t ops = 0;
  };
  std::vector<Bucket> timeline(static_cast<size_t>(run_seconds * 10) + 1);
  double overall_max_us = 0;

  Timer wall;
  bool killed = false;
  uint64_t seq = 0;
  while (wall.ElapsedSeconds() < run_seconds) {
    if (!killed && wall.ElapsedSeconds() >= kill_at) {
      chain.KillReplica(0);
      killed = true;
    }
    std::string key = "task0000000000000" + std::to_string(seq % 1000);
    key.resize(25, 'k');
    size_t bucket = std::min(timeline.size() - 1, static_cast<size_t>(wall.ElapsedSeconds() * 10));
    Timer w;
    chain.Put(key, value);
    double write_us = static_cast<double>(w.ElapsedMicros());
    Timer r;
    auto got = chain.Get(key);
    double read_us = static_cast<double>(r.ElapsedMicros());
    RAY_CHECK(got.ok());
    timeline[bucket].max_write_us = std::max(timeline[bucket].max_write_us, write_us);
    timeline[bucket].max_read_us = std::max(timeline[bucket].max_read_us, read_us);
    ++timeline[bucket].ops;
    overall_max_us = std::max({overall_max_us, write_us, read_us});
    ++seq;
  }

  bench::BenchJson json("gcs_fault_tolerance");
  std::printf("%-8s %-16s %-16s %-8s\n", "t (s)", "max write (us)", "max read (us)", "ops");
  for (size_t b = 0; b < timeline.size(); ++b) {
    if (timeline[b].ops == 0) {
      continue;
    }
    std::printf("%-8.1f %-16.0f %-16.0f %-8llu%s\n", b / 10.0, timeline[b].max_write_us,
                timeline[b].max_read_us, static_cast<unsigned long long>(timeline[b].ops),
                (b == static_cast<size_t>(kill_at * 10)) ? "   <- replica killed" : "");
    json.AddRow("timeline", {{"t_s", b / 10.0},
                             {"max_write_us", timeline[b].max_write_us},
                             {"max_read_us", timeline[b].max_read_us},
                             {"ops", static_cast<double>(timeline[b].ops)}});
  }
  std::printf("\nreconfigurations: %d, live replicas: %zu\n", chain.NumReconfigurations(),
              chain.NumLiveReplicas());
  std::printf("max client-observed latency: %.1f ms (paper: < 30ms)\n", overall_max_us / 1000.0);
  json.Set("kill_at_s", kill_at)
      .Set("reconfigurations", chain.NumReconfigurations())
      .Set("max_latency_ms", overall_max_us / 1000.0);
  json.Write();
  return 0;
}
